let max_code_length = 15

type code = { lengths : int array }

type tree = Leaf of int | Node of tree * tree

(* Two-queue Huffman construction: with the leaves sorted by weight,
   merged nodes are produced in nondecreasing weight order, so a second
   FIFO queue replaces a priority heap. *)
let build_tree weighted_leaves =
  let leaves = Queue.create () and nodes = Queue.create () in
  List.iter (fun x -> Queue.add x leaves) weighted_leaves;
  let pop_min () =
    match (Queue.peek_opt leaves, Queue.peek_opt nodes) with
    | None, None -> assert false
    | Some _, None -> Queue.pop leaves
    | None, Some _ -> Queue.pop nodes
    | Some (wl, _), Some (wn, _) -> if wl <= wn then Queue.pop leaves else Queue.pop nodes
  in
  let total = Queue.length leaves in
  if total = 1 then snd (Queue.pop leaves)
  else begin
    for _ = 1 to total - 1 do
      let w1, t1 = pop_min () in
      let w2, t2 = pop_min () in
      Queue.add (w1 + w2, Node (t1, t2)) nodes
    done;
    snd (Queue.pop nodes)
  end

let depths nsymbols tree =
  let lengths = Array.make nsymbols 0 in
  let maxd = ref 0 in
  let rec go d = function
    | Leaf s ->
      (* A single-symbol alphabet still needs one bit. *)
      lengths.(s) <- max d 1;
      maxd := max !maxd (max d 1)
    | Node (l, r) ->
      go (d + 1) l;
      go (d + 1) r
  in
  go 0 tree;
  (lengths, !maxd)

let of_frequencies freqs =
  let present = ref [] in
  Array.iteri (fun s f -> if f > 0 then present := (f, Leaf s) :: !present) freqs;
  if !present = [] then invalid_arg "Huffman.of_frequencies: empty";
  let sorted xs = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) xs in
  (* Retry with flattened frequencies until the depth limit holds. *)
  let rec attempt leaves =
    let lengths, maxd = depths (Array.length freqs) (build_tree (sorted leaves)) in
    if maxd <= max_code_length then { lengths }
    else attempt (List.map (fun (f, t) -> (((f + 1) / 2) + 1, t)) leaves)
  in
  attempt !present

(* Canonical code assignment: symbols sorted by (length, index) get
   consecutive codes within each length. *)
let canonical_codes { lengths } =
  let nsymbols = Array.length lengths in
  let by_len = Array.make (max_code_length + 1) 0 in
  Array.iter (fun l -> if l > 0 then by_len.(l) <- by_len.(l) + 1) lengths;
  let next = Array.make (max_code_length + 2) 0 in
  let code = ref 0 in
  for l = 1 to max_code_length do
    code := (!code + by_len.(l - 1)) lsl 1;
    next.(l) <- !code
  done;
  let codes = Array.make nsymbols 0 in
  for s = 0 to nsymbols - 1 do
    let l = lengths.(s) in
    if l > 0 then begin
      codes.(s) <- next.(l);
      next.(l) <- next.(l) + 1
    end
  done;
  codes

type encoder = { e_lengths : int array; e_codes : int array }

let encoder c = { e_lengths = c.lengths; e_codes = canonical_codes c }

let encode enc w sym =
  let l = enc.e_lengths.(sym) in
  if l = 0 then invalid_arg "Huffman.encode: symbol has no code";
  Bitio.put_bits w ~value:enc.e_codes.(sym) ~count:l

type decoder = {
  first_code : int array; (* per length: first canonical code *)
  counts : int array; (* per length: number of codes *)
  offsets : int array; (* per length: index into [symbols] *)
  symbols : int array; (* symbols sorted by (length, index) *)
}

let decoder { lengths } =
  let counts = Array.make (max_code_length + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let first_code = Array.make (max_code_length + 1) 0 in
  let offsets = Array.make (max_code_length + 1) 0 in
  let code = ref 0 and off = ref 0 in
  for l = 1 to max_code_length do
    code := (!code + counts.(l - 1)) lsl 1;
    first_code.(l) <- !code;
    offsets.(l) <- !off;
    off := !off + counts.(l)
  done;
  let symbols = Array.make !off 0 in
  let cursor = Array.copy offsets in
  Array.iteri
    (fun s l ->
      if l > 0 then begin
        symbols.(cursor.(l)) <- s;
        cursor.(l) <- cursor.(l) + 1
      end)
    lengths;
  { first_code; counts; offsets; symbols }

let decode dec r =
  (* Canonical decoding: extend the code one bit at a time and check
     whether it falls inside the code range of the current length. *)
  let rec step code len =
    let code = (code lsl 1) lor Bitio.get_bit r in
    let idx = code - dec.first_code.(len) in
    if dec.counts.(len) > 0 && idx >= 0 && idx < dec.counts.(len) then
      dec.symbols.(dec.offsets.(len) + idx)
    else if len >= max_code_length then failwith "Huffman.decode: bad code"
    else step code (len + 1)
  in
  step 0 1

let write_lengths { lengths } w =
  Array.iter (fun l -> Bitio.put_bits w ~value:l ~count:4) lengths

let read_lengths ~symbols r =
  { lengths = Array.init symbols (fun _ -> Bitio.get_bits r 4) }
