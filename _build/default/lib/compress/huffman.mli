(** Canonical Huffman coding over a fixed symbol alphabet.

    Code lengths are derived from symbol frequencies and capped at
    {!max_code_length}; codes are assigned canonically so only the
    length table needs to travel with the data. *)

val max_code_length : int
(** 15, as in DEFLATE. *)

type code = { lengths : int array }
(** Code lengths per symbol (0 = symbol absent). *)

val of_frequencies : int array -> code
(** [of_frequencies freqs] builds length-limited canonical code
    lengths. Symbols with zero frequency get length 0. At least one
    symbol must have nonzero frequency.
    @raise Invalid_argument if all frequencies are zero. *)

type encoder

val encoder : code -> encoder
val encode : encoder -> Bitio.writer -> int -> unit
(** [encode enc w sym] appends the code for [sym].
    @raise Invalid_argument if [sym] has no code. *)

type decoder

val decoder : code -> decoder
val decode : decoder -> Bitio.reader -> int
(** [decode dec r] reads one symbol.
    @raise Failure on a code not in the table. *)

val write_lengths : code -> Bitio.writer -> unit
(** Serializes the length table (4 bits per symbol). *)

val read_lengths : symbols:int -> Bitio.reader -> code
(** Inverse of {!write_lengths} for an alphabet of [symbols] symbols. *)
