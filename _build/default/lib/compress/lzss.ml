let window_size = 4096
let min_match = 3
let max_match = 258
let hash_bits = 13
let hash_size = 1 lsl hash_bits
let max_chain = 64

type token = Literal of char | Match of { distance : int; length : int }

let hash3 s i =
  let a = Char.code s.[i] and b = Char.code s.[i + 1] and c = Char.code s.[i + 2] in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

let tokenize input =
  let n = String.length input in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let match_length i j =
    (* Length of the common prefix of input[i..] and input[j..], capped. *)
    let limit = min max_match (n - i) in
    let rec go l = if l < limit && input.[i + l] = input.[j + l] then go (l + 1) else l in
    go 0
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 input i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_pos = ref (-1) in
    if !i + min_match <= n then begin
      let h = hash3 input !i in
      let j = ref head.(h) and chain = ref 0 in
      while !j >= 0 && !chain < max_chain do
        if !i - !j <= window_size then begin
          let l = match_length !i !j in
          if l > !best_len then begin
            best_len := l;
            best_pos := !j
          end;
          j := prev.(!j)
        end
        else j := -1;
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      tokens := Match { distance = !i - !best_pos; length = !best_len } :: !tokens;
      for k = !i to !i + !best_len - 1 do
        insert k
      done;
      i := !i + !best_len
    end
    else begin
      tokens := Literal input.[!i] :: !tokens;
      insert !i;
      incr i
    end
  done;
  List.rev !tokens

let untokenize tokens =
  let buf = Buffer.create 1024 in
  let emit = function
    | Literal c -> Buffer.add_char buf c
    | Match { distance; length } ->
      let start = Buffer.length buf - distance in
      if start < 0 then invalid_arg "Lzss.untokenize: reference before start";
      (* Byte-at-a-time so overlapping matches (distance < length)
         replicate correctly. *)
      for k = 0 to length - 1 do
        Buffer.add_char buf (Buffer.nth buf (start + k))
      done
  in
  List.iter emit tokens;
  Buffer.contents buf
