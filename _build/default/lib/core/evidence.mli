(** Transferable evidence of a fault (paper §3.1, §4.5).

    When an audit fails, the auditor packages everything a third party
    needs to repeat the checks: the log segment, the hash preceding
    it, and the collected authenticators. Because both checks are
    deterministic, the third party reaches the same verdict without
    trusting either the auditor or the accused. *)

type accusation =
  | Tampered_log of { reason : string }
      (** syntactic check failed: broken chain, authenticator
          mismatch, forged RECV, missing ack *)
  | Replay_divergence of Replay.divergence
      (** semantic check failed *)
  | Unanswered_challenge of { auth : Avm_tamperlog.Auth.t }
      (** the machine would not produce the log segment its own
          authenticator proves must exist (§4.5, §4.6) *)

type t = {
  accused : string;
  prev_hash : string;
  segment : Avm_tamperlog.Entry.t list;
  auths : Avm_tamperlog.Auth.t list;
  accusation : accusation;
}

val describe : t -> string

val check :
  t ->
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  unit ->
  bool
(** [check e ...] is the third party's verification: re-run the audit
    on the evidence and confirm a fault really is present. [true]
    means the evidence is valid and [e.accused] is provably faulty;
    [false] means the evidence does not hold up (and the accuser is
    making an unsupported claim). For [Unanswered_challenge], validity
    means the authenticator is genuine — the third party should then
    challenge the machine itself. *)

val encode : t -> string
val decode : string -> t
(** @raise Avm_util.Wire.Malformed on garbage. *)
