type t = {
  threshold_us : float;
  base_delay_us : float;
  max_delay_us : float;
  mutable last_read_us : float;
  mutable consecutive : int;
  mutable injected_us : float;
  mutable reads : int;
}

let create ?(threshold_us = 5) ?(base_delay_us = 50) ?(max_delay_us = 5000) () =
  {
    threshold_us = float_of_int threshold_us;
    base_delay_us = float_of_int base_delay_us;
    max_delay_us = float_of_int max_delay_us;
    last_read_us = neg_infinity;
    consecutive = 0;
    injected_us = 0.0;
    reads = 0;
  }

let on_read t ~now_us =
  t.reads <- t.reads + 1;
  let delay =
    if now_us -. t.last_read_us <= t.threshold_us then begin
      t.consecutive <- t.consecutive + 1;
      (* n-th consecutive read is delayed by 2^(n-2) * base, n >= 2. *)
      let n = t.consecutive in
      let exp = float_of_int (1 lsl min 20 (n - 2)) in
      Float.min (exp *. t.base_delay_us) t.max_delay_us
    end
    else begin
      t.consecutive <- 1;
      0.0
    end
  in
  t.injected_us <- t.injected_us +. delay;
  t.last_read_us <- now_us +. delay;
  delay

let total_injected_us t = t.injected_us
let reads_observed t = t.reads
