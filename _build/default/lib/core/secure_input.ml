open Avm_tamperlog

type device = { keys : Avm_crypto.Rsa.keypair; mutable next_seq : int }
type attestation = { seq : int; value : int; signature : string }

let create_device rng ?(bits = 512) () = { keys = Avm_crypto.Rsa.generate rng ~bits; next_seq = 1 }
let device_public d = d.keys.Avm_crypto.Rsa.public

let payload seq value =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.bytes w "avm-input-attestation";
  Avm_util.Wire.varint w seq;
  Avm_util.Wire.u32 w value;
  Avm_util.Wire.contents w

let attest d value =
  let seq = d.next_seq in
  d.next_seq <- seq + 1;
  { seq; value; signature = Avm_crypto.Rsa.sign d.keys.Avm_crypto.Rsa.private_ (payload seq value) }

let verify key a =
  Avm_crypto.Rsa.verify key ~msg:(payload a.seq a.value) ~signature:a.signature

let audit ~device_key ~entries ~attestations =
  let remaining = ref attestations in
  let verified = ref 0 in
  let result = ref (Ok 0) in
  (try
     List.iter
       (fun (e : Entry.t) ->
         match e.content with
         | Entry.Exec (Avm_machine.Event.Io_in { port; value; _ })
           when port = Avm_isa.Isa.port_input && value <> 0 -> (
           match !remaining with
           | [] ->
             result :=
               Error
                 (Printf.sprintf
                    "entry #%d: input event %d has no device attestation (synthesized input?)"
                    e.seq value);
             raise Exit
           | a :: rest ->
             if not (verify device_key a) then begin
               result := Error (Printf.sprintf "attestation %d: bad device signature" a.seq);
               raise Exit
             end;
             if a.value <> value then begin
               result :=
                 Error
                   (Printf.sprintf
                      "entry #%d: input event %d does not match attested event %d (seq %d)"
                      e.seq value a.value a.seq);
               raise Exit
             end;
             remaining := rest;
             incr verified)
         | _ -> ())
       entries;
     result := Ok !verified
   with Exit -> ());
  !result
