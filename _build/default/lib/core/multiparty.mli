(** Multi-party bookkeeping (paper §4.6).

    Each participant keeps, per peer: every authenticator it has seen
    (from envelopes, acks, or forwarded by other participants), any
    open challenges, and any evidence received. The three §4.6
    mechanisms map to:

    - {!record_auth} / {!auths_for}: authenticator collection and
      exchange before an audit;
    - {!open_challenge} / {!answer_challenge} / {!has_open_challenge}:
      a node that ignores an audit request is challenged through the
      other participants, who stop communicating with it until it
      answers;
    - {!add_evidence} / {!evidence_against}: distribution of verified
      evidence, after which everyone can shun the faulty node. *)

type t

val create : self:string -> t

val record_auth : t -> Avm_tamperlog.Auth.t -> unit
(** File an authenticator under the node that issued it (idempotent). *)

val auths_for : t -> string -> Avm_tamperlog.Auth.t list
(** All authenticators collected for a node, ascending by seq. *)

val merge_auths : t -> from:t -> node:string -> unit
(** Import another participant's collection for [node] — what Alice
    does with Charlie's authenticators before auditing Bob. *)

type challenge = { id : int; accused : string; description : string; mutable answered : bool }

val open_challenge : t -> accused:string -> description:string -> challenge
val answer_challenge : t -> int -> unit
val has_open_challenge : t -> string -> bool
(** While true, participants refuse regular traffic with that node. *)

val add_evidence : t -> Evidence.t -> unit
val evidence_against : t -> string -> Evidence.t list
val shunned : t -> string list
(** Nodes with at least one piece of evidence on file. *)
