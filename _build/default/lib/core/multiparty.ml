open Avm_tamperlog

type challenge = { id : int; accused : string; description : string; mutable answered : bool }

type t = {
  self : string;
  auths : (string, (int * string, Auth.t) Hashtbl.t) Hashtbl.t;
      (* node -> (seq, hash) -> auth, deduplicated *)
  mutable challenges : challenge list;
  mutable next_challenge : int;
  mutable evidence : Evidence.t list;
}

let create ~self =
  { self; auths = Hashtbl.create 8; challenges = []; next_challenge = 1; evidence = [] }

let node_table t node =
  match Hashtbl.find_opt t.auths node with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace t.auths node tbl;
    tbl

let record_auth t (a : Auth.t) =
  let tbl = node_table t a.node in
  Hashtbl.replace tbl (a.seq, a.hash) a

let auths_for t node =
  match Hashtbl.find_opt t.auths node with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
    |> List.sort (fun (a : Auth.t) (b : Auth.t) -> compare a.seq b.seq)

let merge_auths t ~from ~node = List.iter (record_auth t) (auths_for from node)

let open_challenge t ~accused ~description =
  let c = { id = t.next_challenge; accused; description; answered = false } in
  t.next_challenge <- t.next_challenge + 1;
  t.challenges <- c :: t.challenges;
  c

let answer_challenge t id =
  List.iter (fun c -> if c.id = id then c.answered <- true) t.challenges

let has_open_challenge t node =
  List.exists (fun c -> (not c.answered) && String.equal c.accused node) t.challenges

let add_evidence t e = t.evidence <- e :: t.evidence

let evidence_against t node =
  List.filter (fun (e : Evidence.t) -> String.equal e.Evidence.accused node) t.evidence

let shunned t =
  List.sort_uniq compare (List.map (fun (e : Evidence.t) -> e.Evidence.accused) t.evidence)
