(** The consecutive-clock-read optimization of paper §6.5.

    Applications that busy-wait on the clock (Counterstrike's frame
    cap) flood the log with TimeTracker entries — an 18x growth in the
    paper. Whenever the AVMM observes consecutive clock reads from the
    same AVM within 5 us of each other, it delays the n-th consecutive
    read by [2^(n-2) * 50 us], from the second read up to a cap of
    5 ms. The exponential progression bounds reads during long waits
    without hurting short-wait timing accuracy. *)

type t

val create : ?threshold_us:int -> ?base_delay_us:int -> ?max_delay_us:int -> unit -> t
(** Defaults: threshold 5 us, base delay 50 us, cap 5000 us. *)

val on_read : t -> now_us:float -> float
(** [on_read t ~now_us] is the delay (in us) to impose on this clock
    read; the caller serves [now_us + delay] to the guest and stalls
    the VM for [delay]. *)

val total_injected_us : t -> float
(** Cumulative delay injected so far. *)

val reads_observed : t -> int
