lib/core/online_audit.ml: Avm_tamperlog Replay
