lib/core/avmm.ml: Array Auth Avm_crypto Avm_isa Avm_machine Avm_tamperlog Avm_util Char Clock_opt Config Entry Event Hashtbl Int64 List Log Machine Memory Queue Snapshot String Wireformat
