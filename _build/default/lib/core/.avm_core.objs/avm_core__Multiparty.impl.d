lib/core/multiparty.ml: Auth Avm_tamperlog Evidence Hashtbl List String
