lib/core/secure_input.ml: Avm_crypto Avm_isa Avm_machine Avm_tamperlog Avm_util Entry List Printf
