lib/core/replay.ml: Array Avm_crypto Avm_isa Avm_machine Avm_tamperlog Entry Event Format Hashtbl Landmark List Machine Option Printf Snapshot String Wireformat
