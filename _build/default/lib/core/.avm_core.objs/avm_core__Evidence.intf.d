lib/core/evidence.mli: Avm_crypto Avm_machine Avm_tamperlog Replay
