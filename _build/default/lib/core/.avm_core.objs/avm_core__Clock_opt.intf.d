lib/core/clock_opt.mli:
