lib/core/evidence.ml: Audit Auth Avm_crypto Avm_machine Avm_tamperlog Avm_util Entry Format List Printf Replay String
