lib/core/spot_check.ml: Avm_compress Avm_crypto Avm_machine Avm_tamperlog Entry List Log Machine Memory Printf Replay Snapshot String
