lib/core/clock_opt.ml: Float
