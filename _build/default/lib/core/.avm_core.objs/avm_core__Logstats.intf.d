lib/core/logstats.mli: Avm_tamperlog
