lib/core/config.mli:
