lib/core/multiparty.mli: Avm_tamperlog Evidence
