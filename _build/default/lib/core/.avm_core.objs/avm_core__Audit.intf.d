lib/core/audit.mli: Avm_crypto Avm_machine Avm_tamperlog Format Replay
