lib/core/wireformat.ml: Array Avm_crypto Avm_tamperlog Avm_util Char String Wire
