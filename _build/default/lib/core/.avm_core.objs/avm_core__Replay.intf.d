lib/core/replay.mli: Avm_machine Avm_tamperlog Format
