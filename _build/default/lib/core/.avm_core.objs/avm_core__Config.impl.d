lib/core/config.ml:
