lib/core/secure_input.mli: Avm_crypto Avm_tamperlog Avm_util
