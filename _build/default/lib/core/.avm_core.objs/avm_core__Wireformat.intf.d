lib/core/wireformat.mli: Avm_crypto Avm_tamperlog
