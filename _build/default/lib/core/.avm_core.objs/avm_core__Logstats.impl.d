lib/core/logstats.ml: Avm_compress Avm_isa Avm_machine Avm_tamperlog Entry List Log String
