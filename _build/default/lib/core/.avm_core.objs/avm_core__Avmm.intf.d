lib/core/avmm.mli: Avm_crypto Avm_machine Avm_tamperlog Config Wireformat
