lib/core/online_audit.mli: Avm_tamperlog Replay
