lib/core/audit.ml: Auth Avm_crypto Avm_machine Avm_tamperlog Entry Format Hashtbl List Log Printf Replay String Sys Wireformat
