lib/core/spot_check.mli: Avm_machine Avm_tamperlog Replay
