(** Spot checking: auditing k consecutive inter-snapshot segments
    instead of the whole log (paper §3.5, §6.12).

    The log is divided into {e segments} by its Snapshot_ref entries;
    [k] consecutive segments form a {e k-chunk}. To check a chunk the
    auditor downloads the machine state at the chunk's first snapshot
    (authenticated against the logged digest), the compressed log
    segment, and replays it. Cost is therefore a fixed part (state
    transfer, decompression) plus a part linear in [k] — Figure 9. *)

type boundary = { entry_seq : int; snapshot_seq : int; at_icount : int }

val boundaries : Avm_tamperlog.Log.t -> boundary list
(** The Snapshot_ref entries of a log, in order. *)

type chunk_report = {
  start_snapshot : int;
  k : int;
  state_bytes : int;  (** authenticated state downloaded at chunk start *)
  log_bytes_compressed : int;  (** compressed log segment shipped *)
  replay_instructions : int;
  outcome : Replay.outcome;
}

val check_chunk :
  image:int array ->
  mem_words:int ->
  snapshots:Avm_machine.Snapshot.t list ->
  log:Avm_tamperlog.Log.t ->
  peers:(int * string) list ->
  start_snapshot:int ->
  k:int ->
  chunk_report
(** [check_chunk ~start_snapshot ~k ...] audits the k-chunk beginning
    at snapshot [start_snapshot]. The snapshot chain is verified
    against the log's digest before replay; a forged snapshot is
    reported as a divergence.
    @raise Invalid_argument if the chunk runs past the last snapshot. *)
