(** The audit tool (paper §4.5): syntactic check, then semantic check.

    The {b syntactic} check needs no execution: it verifies the hash
    chain, matches every collected authenticator against the log,
    verifies the sender signatures inside RECV entries, checks that
    sends were acknowledged, and sanity-checks the cross-references
    from the input stream into the message stream.

    The {b semantic} check is {!Replay.replay}: deterministic replay
    of the segment against the reference image.

    Both are deterministic, so any third party repeating them obtains
    the same verdict — that is what makes the output {!Evidence}. *)

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;  (** collected authenticators that matched the log *)
  recv_signatures_verified : int;
  failures : string list;  (** empty means the check passed *)
}

val syntactic :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  prev_hash:string ->
  entries:Avm_tamperlog.Entry.t list ->
  auths:Avm_tamperlog.Auth.t list ->
  ?ack_grace:int ->
  unit ->
  syntactic_report
(** [ack_grace] (default 50) exempts the most recent sends from the
    every-send-is-acked rule: their acks may legitimately still be in
    flight when the log was cut. *)

type report = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;  (** [None] if syntactic failed *)
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict : (unit, string) result;
}

val full :
  node_cert:Avm_crypto.Identity.certificate ->
  peer_certs:(string * Avm_crypto.Identity.certificate) list ->
  image:int array ->
  ?mem_words:int ->
  ?start:Avm_machine.Machine.t ->
  ?fuel:int ->
  peers:(int * string) list ->
  prev_hash:string ->
  entries:Avm_tamperlog.Entry.t list ->
  auths:Avm_tamperlog.Auth.t list ->
  unit ->
  report
(** Complete audit of one log segment. The semantic check runs only if
    the syntactic check passes (a broken chain is already evidence). *)

val pp_report : Format.formatter -> report -> unit
