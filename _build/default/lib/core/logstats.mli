(** Log composition accounting for Figures 3 and 4.

    Classifies each log entry into the categories the paper reports:
    TimeTracker (clock-timing events), MAC layer (network packet
    events), other replay information (interrupt landmarks, local
    input, RNG), and tamper-evident logging (message payloads with
    signatures, acks, snapshot digests). Also computes the size of the
    "equivalent VMware log" — the same execution recorded without
    accountability, where packet payloads live in MAC entries instead
    of tamper-evident entries. *)

type breakdown = {
  timetracker_bytes : int;
  mac_bytes : int;
  other_replay_bytes : int;
  tamper_evident_bytes : int;
  payload_bytes : int;  (** raw packet payload bytes inside SEND/RECV *)
  packets : int;  (** SEND + RECV entries *)
  total_bytes : int;
  entries : int;
}

val empty : breakdown
val add : breakdown -> Avm_tamperlog.Entry.t -> breakdown
val of_log : Avm_tamperlog.Log.t -> breakdown
val of_entries : Avm_tamperlog.Entry.t list -> breakdown

val vmware_equivalent_bytes : breakdown -> int
(** Size of the same recording without tamper-evident logging: the
    replay streams plus raw packet payloads, minus signatures, hashes
    and acks. *)

val compressed_bytes : Avm_tamperlog.Log.t -> int
(** Size of the whole serialized log after {!Avm_compress.Codec}. *)
