(** Secure local input — the paper's §7.2 extension.

    AVMs cannot detect the re-engineered external aimbot because
    "existing hardware does not authenticate events from local input
    devices... keyboards could sign keystroke events before reporting
    them to the OS, and an auditor could verify that the keystrokes are
    genuine using the keyboard's public key."

    This module implements that hypothetical hardware: a {!device}
    holds the keyboard's keypair and signs each event with a
    monotonically increasing counter; {!audit} checks that every input
    event the log claims the AVM consumed is covered, in order, by a
    genuine attestation. A program (or robot arm substitute) feeding
    synthetic events into the input queue cannot produce attestations,
    so the previously undetectable cheat becomes detectable. *)

type device
(** A signing input device (keyboard/mouse). *)

type attestation = { seq : int; value : int; signature : string }
(** One signed input event. *)

val create_device : Avm_util.Rng.t -> ?bits:int -> unit -> device
(** Manufacture a device with a fresh keypair (default 512-bit — input
    attestations are low-stakes and high-rate). *)

val device_public : device -> Avm_crypto.Rsa.public_key

val attest : device -> int -> attestation
(** Sign the next input event. Counters make replayed attestations
    detectable. *)

val verify : Avm_crypto.Rsa.public_key -> attestation -> bool

val audit :
  device_key:Avm_crypto.Rsa.public_key ->
  entries:Avm_tamperlog.Entry.t list ->
  attestations:attestation list ->
  (int, string) result
(** [audit ~device_key ~entries ~attestations] checks that every
    non-zero INPUT word the log shows entering the AVM is backed by the
    next unconsumed attestation with the same value. Returns the number
    of verified events, or a description of the first forged/unbacked
    input. Unconsumed trailing attestations are fine (events still
    queued when the log was cut). *)
