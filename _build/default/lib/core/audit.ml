open Avm_tamperlog

type syntactic_report = {
  entries_checked : int;
  auths_matched : int;
  recv_signatures_verified : int;
  failures : string list;
}

let syntactic ~node_cert ~peer_certs ~prev_hash ~entries ~auths ?(ack_grace = 50) () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let node = Avm_crypto.Identity.cert_name node_cert in
  (* 1. Hash chain. *)
  (match Log.verify_segment ~prev:prev_hash entries with
  | Ok () -> ()
  | Error e -> fail "chain: %s" e);
  (* 2. Collected authenticators must match the log. *)
  let by_seq = Hashtbl.create 256 in
  List.iter (fun (e : Entry.t) -> Hashtbl.replace by_seq e.seq e) entries;
  let auths_matched = ref 0 in
  List.iter
    (fun (a : Auth.t) ->
      if String.equal a.node node then begin
        if not (Auth.verify node_cert a) then
          fail "authenticator #%d: bad signature or inconsistent hash" a.seq
        else begin
          match Hashtbl.find_opt by_seq a.seq with
          | None -> () (* outside this segment *)
          | Some e ->
            if Auth.matches_entry a e then incr auths_matched
            else fail "authenticator #%d does not match the log (forked or rewritten log)" a.seq
        end
      end)
    auths;
  (* 3. RECV sender signatures. *)
  let recv_sigs = ref 0 in
  List.iter
    (fun (e : Entry.t) ->
      match e.content with
      | Entry.Recv { src; nonce; payload; signature } when signature <> "" -> (
        match List.assoc_opt src peer_certs with
        | None -> fail "entry #%d: no certificate for sender %s" e.seq src
        | Some cert ->
          let body = Wireformat.message_body ~src ~dest:node ~nonce ~payload in
          if Avm_crypto.Identity.verify cert ~msg:body ~signature then incr recv_sigs
          else fail "entry #%d: forged RECV — sender signature invalid" e.seq)
      | _ -> ())
    entries;
  (* 4. Every send acknowledged (modulo the in-flight tail). *)
  let acked = Hashtbl.create 64 in
  List.iter
    (fun (e : Entry.t) ->
      match e.content with
      | Entry.Ack { acked_seq; _ } -> Hashtbl.replace acked acked_seq ()
      | _ -> ())
    entries;
  let last_seq = List.fold_left (fun _ (e : Entry.t) -> e.seq) 0 entries in
  List.iter
    (fun (e : Entry.t) ->
      match e.content with
      | Entry.Send _ when e.seq <= last_seq - ack_grace && not (Hashtbl.mem acked e.seq) ->
        fail "entry #%d: SEND was never acknowledged" e.seq
      | _ -> ())
    entries;
  (* 5. Input-stream references into the message stream are sane. *)
  List.iter
    (fun (e : Entry.t) ->
      match e.content with
      | Entry.Exec (Avm_machine.Event.Io_in { msg; _ }) when msg >= 0 -> (
        if msg >= e.seq then fail "entry #%d: rx read references future entry %d" e.seq msg
        else begin
          match Hashtbl.find_opt by_seq msg with
          | Some { Entry.content = Entry.Recv _; _ } -> ()
          | Some _ -> fail "entry #%d: rx read references non-RECV entry %d" e.seq msg
          | None -> () (* before this segment *)
        end)
      | _ -> ())
    entries;
  {
    entries_checked = List.length entries;
    auths_matched = !auths_matched;
    recv_signatures_verified = !recv_sigs;
    failures = List.rev !failures;
  }

type report = {
  node : string;
  syntactic : syntactic_report;
  semantic : Replay.outcome option;
  syntactic_seconds : float;
  semantic_seconds : float;
  verdict : (unit, string) result;
}

let full ~node_cert ~peer_certs ~image ?mem_words ?start ?fuel ~peers ~prev_hash ~entries
    ~auths () =
  let t0 = Sys.time () in
  let syn = syntactic ~node_cert ~peer_certs ~prev_hash ~entries ~auths () in
  let t1 = Sys.time () in
  if syn.failures <> [] then
    {
      node = Avm_crypto.Identity.cert_name node_cert;
      syntactic = syn;
      semantic = None;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = 0.0;
      verdict = Error (String.concat "; " syn.failures);
    }
  else begin
    let outcome = Replay.replay ~image ?mem_words ?start ?fuel ~peers ~entries () in
    let t2 = Sys.time () in
    {
      node = Avm_crypto.Identity.cert_name node_cert;
      syntactic = syn;
      semantic = Some outcome;
      syntactic_seconds = t1 -. t0;
      semantic_seconds = t2 -. t1;
      verdict =
        (match outcome with
        | Replay.Verified _ -> Ok ()
        | Replay.Diverged d -> Error (Format.asprintf "%a" Replay.pp_outcome (Replay.Diverged d)));
    }
  end

let pp_report fmt r =
  Format.fprintf fmt "@[<v>audit of %s:@ syntactic: %d entries, %d auths, %d recv sigs — %s@ "
    r.node r.syntactic.entries_checked r.syntactic.auths_matched
    r.syntactic.recv_signatures_verified
    (if r.syntactic.failures = [] then "PASS"
     else "FAIL: " ^ String.concat "; " r.syntactic.failures);
  (match r.semantic with
  | None -> Format.fprintf fmt "semantic: skipped@ "
  | Some o -> Format.fprintf fmt "semantic: %a@ " Replay.pp_outcome o);
  Format.fprintf fmt "verdict: %s@]"
    (match r.verdict with Ok () -> "CORRECT" | Error e -> "FAULTY (" ^ e ^ ")")
