lib/tamperlog/log.mli: Entry
