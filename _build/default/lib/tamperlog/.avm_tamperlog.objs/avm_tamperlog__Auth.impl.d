lib/tamperlog/auth.ml: Avm_crypto Avm_util Entry Format String Wire
