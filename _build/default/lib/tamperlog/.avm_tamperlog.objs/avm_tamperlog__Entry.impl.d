lib/tamperlog/entry.ml: Avm_crypto Avm_machine Avm_util Format Printf String Wire
