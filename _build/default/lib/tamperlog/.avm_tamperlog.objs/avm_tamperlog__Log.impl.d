lib/tamperlog/log.ml: Array Avm_util Entry List Printf String
