lib/tamperlog/auth.mli: Avm_crypto Avm_util Entry Format
