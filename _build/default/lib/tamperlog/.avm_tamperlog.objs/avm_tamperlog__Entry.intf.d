lib/tamperlog/entry.mli: Avm_machine Avm_util Format
