let genesis_hash = String.make 32 '\000'

(* Entries are stored in a growable array; index [i] holds seq [i+1]. *)
type t = { mutable entries : Entry.t array; mutable count : int; mutable bytes : int }

let create () = { entries = Array.make 64 { Entry.seq = 0; content = Note ""; hash = "" }; count = 0; bytes = 0 }

let length t = t.count
let head_hash t = if t.count = 0 then genesis_hash else t.entries.(t.count - 1).Entry.hash

let ensure_capacity t =
  if t.count = Array.length t.entries then begin
    let bigger = Array.make (2 * Array.length t.entries) t.entries.(0) in
    Array.blit t.entries 0 bigger 0 t.count;
    t.entries <- bigger
  end

let append t content =
  ensure_capacity t;
  let e = Entry.seal ~prev:(head_hash t) ~seq:(t.count + 1) content in
  t.entries.(t.count) <- e;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + Entry.wire_size e;
  e

let entry t seq =
  if seq < 1 || seq > t.count then invalid_arg "Log.entry: out of range";
  t.entries.(seq - 1)

let prev_hash t seq =
  if seq <= 1 then genesis_hash else (entry t (seq - 1)).Entry.hash

let segment t ~from ~upto =
  let from = max 1 from and upto = min t.count upto in
  let rec go seq acc = if seq < from then acc else go (seq - 1) (entry t seq :: acc) in
  if upto < from then [] else go upto []

let iter t f =
  for i = 0 to t.count - 1 do
    f t.entries.(i)
  done

let byte_size t = t.bytes

let encode_segment entries =
  let w = Avm_util.Wire.writer () in
  Avm_util.Wire.list w Entry.write_body entries;
  Avm_util.Wire.contents w

let decode_segment ~prev s =
  let r = Avm_util.Wire.reader s in
  let n = Avm_util.Wire.read_varint r in
  let rec go prev i acc =
    if i = n then List.rev acc
    else begin
      let e = Entry.read_body ~prev r in
      go e.Entry.hash (i + 1) (e :: acc)
    end
  in
  let entries = go prev 0 [] in
  Avm_util.Wire.expect_end r;
  entries

let verify_segment ~prev entries =
  let rec go prev expected_seq = function
    | [] -> Ok ()
    | (e : Entry.t) :: rest ->
      if expected_seq >= 0 && e.seq <> expected_seq then
        Error (Printf.sprintf "sequence gap: expected %d, found %d" expected_seq e.seq)
      else begin
        let recomputed = Entry.chain_hash ~prev ~seq:e.seq e.content in
        if not (String.equal recomputed e.hash) then
          Error (Printf.sprintf "hash chain broken at entry %d" e.seq)
        else go e.hash (e.seq + 1) rest
      end
  in
  match entries with
  | [] -> Ok ()
  | first :: _ -> go prev first.Entry.seq entries

let tamper_replace t seq content =
  if seq < 1 || seq > t.count then invalid_arg "Log.tamper_replace: out of range";
  let e = t.entries.(seq - 1) in
  t.entries.(seq - 1) <- { e with Entry.content }

let tamper_truncate t seq =
  if seq < 0 || seq > t.count then invalid_arg "Log.tamper_truncate: out of range";
  t.count <- seq

let tamper_reseal t seq content =
  if seq < 1 || seq > t.count then invalid_arg "Log.tamper_reseal: out of range";
  let prev = ref (prev_hash t seq) in
  t.entries.(seq - 1) <- Entry.seal ~prev:!prev ~seq content;
  prev := t.entries.(seq - 1).Entry.hash;
  for i = seq to t.count - 1 do
    let e = t.entries.(i) in
    t.entries.(i) <- Entry.seal ~prev:!prev ~seq:e.Entry.seq e.Entry.content;
    prev := t.entries.(i).Entry.hash
  done

let fork t = { entries = Array.copy t.entries; count = t.count; bytes = t.bytes }
