(** The append-only tamper-evident log (paper §4.3).

    A hash chain of {!Entry.t}. Appending seals each entry against the
    current head; {!verify_segment} recomputes the chain and is the
    auditor's first line of defence against forged, reordered, omitted
    or modified entries. *)

type t

val create : unit -> t
(** An empty log; [h_0] is 32 zero bytes. *)

val genesis_hash : string
(** [h_0]. *)

val append : t -> Entry.content -> Entry.t
(** [append log c] seals and stores the next entry. *)

val length : t -> int
(** Number of entries; also the head sequence number (seqs start
    at 1). *)

val head_hash : t -> string
(** [h_i] of the newest entry, or {!genesis_hash} when empty. *)

val entry : t -> int -> Entry.t
(** [entry log seq] fetches by sequence number.
    @raise Invalid_argument if out of range. *)

val prev_hash : t -> int -> string
(** [prev_hash log seq] is [h_{seq-1}] ({!genesis_hash} for
    [seq = 1]). *)

val segment : t -> from:int -> upto:int -> Entry.t list
(** Entries with [from <= seq <= upto] (inclusive; both clamped to
    valid range). *)

val iter : t -> (Entry.t -> unit) -> unit

val byte_size : t -> int
(** Total serialized size of all entries — the "log size" of
    Figures 3/4. *)

val encode_segment : Entry.t list -> string
(** Wire format for shipping a segment to an auditor: sequence, type
    and content per entry — no hashes (see {!Entry.write_body}). *)

val decode_segment : prev:string -> string -> Entry.t list
(** [decode_segment ~prev blob] rebuilds the entries, recomputing the
    hash chain from [prev] (the hash preceding the segment;
    {!genesis_hash} for a full log). A transmitted segment's integrity
    is established by matching the rebuilt chain against collected
    authenticators, not by trusting shipped hashes.
    @raise Avm_util.Wire.Malformed on garbage. *)

val verify_segment : prev:string -> Entry.t list -> (unit, string) result
(** [verify_segment ~prev entries] recomputes the hash chain starting
    from [prev] (the hash of the entry preceding the segment) and
    checks sequence numbers are consecutive. Returns a human-readable
    reason on failure. *)

(** {1 Tampering (test / adversary API)}

    A faulty node does not call [append] honestly; these helpers let
    tests and the cheat catalog build bad logs. *)

val tamper_replace : t -> int -> Entry.content -> unit
(** Overwrite entry [seq] in place {e without} resealing later
    entries — exactly what a naive cheater would do. *)

val tamper_truncate : t -> int -> unit
(** Drop all entries after [seq]. *)

val tamper_reseal : t -> int -> Entry.content -> unit
(** Overwrite entry [seq] and recompute every later hash, producing an
    internally consistent — but different — chain. The hash chain
    verifies; only previously issued authenticators expose the fork.
    This is the stronger attacker the paper's authenticators exist
    for. *)

val fork : t -> t
(** An independent copy sharing the prefix — for fork attacks. *)
