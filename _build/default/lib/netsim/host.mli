(** Host CPU model: one machine with 8 hyperthreads (4 cores x 2), as
    in the paper's Core i7 860 testbed (§6.2, §6.9).

    Busy time is charged per hyperthread; Figure 6 reads utilization
    from here. The single-threaded game is scheduled round-robin over
    the hyperthreads allowed to it (the OS effect the paper describes:
    "sometimes on one HT and sometimes on another"), while the logging
    daemon is pinned to HT 0 and its hypertwin HT 4 is left idle. *)

type t

val hyperthreads : int
(** 8. *)

val create : ?daemon_ht:int -> ?game_hts:int list -> unit -> t
(** Defaults: daemon on HT 0; game allowed on HTs 1,2,3,5,6,7
    (HT 4 shares a core with the daemon and is avoided). *)

val charge_game : t -> float -> unit
(** Add busy microseconds of game work, spread round-robin in small
    quanta over the allowed HTs. *)

val charge_daemon : t -> float -> unit
val charge_audit : t -> float -> unit
(** Audit replay work: soaks otherwise-idle HTs (highest-numbered
    first). *)

val utilization : t -> elapsed_us:float -> float array
(** Per-HT busy fraction over the elapsed window. *)

val total_utilization : t -> elapsed_us:float -> float
(** Average across all HTs. *)
