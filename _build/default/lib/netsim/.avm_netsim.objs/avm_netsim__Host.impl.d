lib/netsim/host.ml: Array Float List
