lib/netsim/net.mli: Avm_core Avm_crypto Avm_util Host Sim
