lib/netsim/net.ml: Array Avm_core Avm_crypto Avm_util Avmm Config Float Host List Multiparty Sim Wireformat
