lib/netsim/sim.mli:
