lib/netsim/host.mli:
