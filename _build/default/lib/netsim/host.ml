let hyperthreads = 8

type t = {
  busy : float array;
  daemon_ht : int;
  game_hts : int array;
  mutable game_cursor : int;
  audit_hts : int array;
  mutable audit_cursor : int;
}

let create ?(daemon_ht = 0) ?(game_hts = [ 1; 2; 3; 5; 6; 7 ]) () =
  let game = Array.of_list game_hts in
  let audit =
    (* Audits soak HTs from the top down; they contend with the game
       but prefer currently-unused slots. *)
    Array.of_list (List.rev game_hts)
  in
  {
    busy = Array.make hyperthreads 0.0;
    daemon_ht;
    game_hts = game;
    game_cursor = 0;
    audit_hts = audit;
    audit_cursor = 0;
  }

(* The OS migrates the single game thread between HTs on a ~10ms
   quantum; spreading charges round-robin reproduces the paper's
   "12.5% average over eight hyperthreads" shape. *)
let quantum_us = 10_000.0

let charge_rr busy hts cursor_get cursor_set us =
  let remaining = ref us in
  while !remaining > 0.0 do
    let chunk = Float.min quantum_us !remaining in
    let c = cursor_get () in
    busy.(hts.(c)) <- busy.(hts.(c)) +. chunk;
    cursor_set ((c + 1) mod Array.length hts);
    remaining := !remaining -. chunk
  done

let charge_game t us =
  charge_rr t.busy t.game_hts (fun () -> t.game_cursor) (fun c -> t.game_cursor <- c) us

let charge_daemon t us = t.busy.(t.daemon_ht) <- t.busy.(t.daemon_ht) +. us

let charge_audit t us =
  charge_rr t.busy t.audit_hts (fun () -> t.audit_cursor) (fun c -> t.audit_cursor <- c) us

let utilization t ~elapsed_us =
  Array.map (fun b -> if elapsed_us <= 0.0 then 0.0 else Float.min 1.0 (b /. elapsed_us)) t.busy

let total_utilization t ~elapsed_us =
  let u = utilization t ~elapsed_us in
  Array.fold_left ( +. ) 0.0 u /. float_of_int hyperthreads
