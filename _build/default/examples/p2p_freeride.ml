(* The p2p scenario from the paper's introduction: peers "may wish to
   verify that others follow the protocol and contribute their fair
   share of resources." A freerider keeps downloading but never
   uploads — deniable without AVMs ("your requests got lost"), provable
   with them. Run with:

     dune exec examples/p2p_freeride.exe *)

open Avm_scenario

let show label (o : P2p_run.outcome) =
  Printf.printf "%s: uploads per peer = [%s], chunks held = [%s]\n%!" label
    (String.concat "; " (Array.to_list (Array.map string_of_int o.P2p_run.served)))
    (String.concat "; " (Array.to_list (Array.map string_of_int o.P2p_run.have)))

let () =
  print_endline "== 4 peers swap a 32-chunk file; everyone must serve requests ==";
  let fair = P2p_run.run () in
  show "   fair swarm" fair;
  (match (P2p_run.audit fair ~target:1).Avm_core.Audit.verdict with
  | Ok () -> print_endline "   audit of peer1: CORRECT"
  | Error e -> Printf.printf "   audit of peer1: FAULTY (%s)\n" e);

  print_endline "";
  print_endline "== peer1 installs a freeriding client (never uploads) ==";
  let bad = P2p_run.run ~freerider:(Some 1) () in
  show "   freeriding swarm" bad;
  (match (P2p_run.audit bad ~target:1).Avm_core.Audit.verdict with
  | Ok () -> print_endline "   audit of peer1: CORRECT (?)"
  | Error e ->
    Printf.printf "   audit of peer1: FAULTY\n   %s\n"
      (String.sub e 0 (min 120 (String.length e))));
  print_endline "";
  print_endline
    "   peer1's own log shows the requests arriving; replaying the reference\n\
    \   client against that log produces the uploads his log lacks. The missing\n\
    \   contribution is not a network anomaly — it is provable protocol violation."
