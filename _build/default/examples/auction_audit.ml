(* The auction from the paper's introduction: bidders "may wish to
   verify ... that the provider of the service implements the stated
   rules faithfully." The auctioneer runs in an AVM; if he rigs rounds,
   any bidder's audit proves it. Run with:

     dune exec examples/auction_audit.exe *)

open Avm_scenario

let show label (o : Auction_run.outcome) =
  Printf.printf "%s: %d rounds; wins per node: auctioneer=%d %s\n%!" label
    o.Auction_run.rounds o.Auction_run.wins.(0)
    (String.concat " "
       (List.init o.Auction_run.bidders (fun i ->
            Printf.sprintf "bidder%d=%d" (i + 1) o.Auction_run.wins.(i + 1))))

let audit_auctioneer o =
  let report = Auction_run.audit o ~target:0 in
  match report.Avm_core.Audit.verdict with
  | Ok () -> print_endline "   audit of the auctioneer: CORRECT"
  | Error e -> Printf.printf "   audit of the auctioneer: FAULTY\n   %s\n" e

let () =
  print_endline "== an honest sealed-bid auction (3 bidders, AVM-hosted auctioneer) ==";
  let honest = Auction_run.run () in
  show "   honest" honest;
  audit_auctioneer honest;

  print_endline "";
  print_endline "== the same auction, but the auctioneer rigs the rounds ==";
  print_endline "   (he rewrites the stored high bid in guest memory before each close)";
  let rigged = Auction_run.run ~rigged:true () in
  show "   rigged" rigged;
  audit_auctioneer rigged;
  print_endline "";
  print_endline
    "   the announcements in his own signed log contradict the bids it shows he\n\
    \   received — no bidder needed to trust the auctioneer, the platform, or\n\
    \   each other to prove it."
