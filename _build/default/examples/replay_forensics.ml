(* The paper's §7 extensions, live:

   - §7.5: deterministic replay decouples expensive analysis from
     execution — run taint tracking, profiling and memory watchpoints
     during an audit, at zero cost to the recorded system;
   - §7.2: with trusted (signing) input hardware, even the
     re-engineered external aimbot — undetectable by a standard audit —
     is caught.

   Run with: dune exec examples/replay_forensics.exe *)

open Avm_scenario
open Avm_analysis

let () =
  print_endline "== record a match where player1 runs the EXTERNAL aimbot ==";
  print_endline "   (perfect aim fed through the real input channel — paper §5.4)";
  let spec =
    {
      Game_run.default_spec with
      duration_us = 8.0e6;
      rsa_bits = 512;
      config =
        Avm_core.Config.make ~snapshot_every_us:(Some 4_000_000) Avm_core.Config.Avmm_rsa768;
      cheat = Some (1, Cheats.external_aimbot);
    }
  in
  let o = Game_run.play spec in

  print_endline "== a standard audit is blind to it ==";
  let std = Game_run.audit_player o ~auditor:0 ~target:1 in
  Printf.printf "   verdict: %s\n%!"
    (match std.Avm_core.Audit.verdict with
    | Ok () -> "CORRECT — the inputs are plausible, so replay verifies"
    | Error e -> "faulty: " ^ e);

  print_endline "== §7.2: the trusted keyboard's signed event stream is not ==";
  (match Game_run.audit_inputs o ~target:1 with
  | Ok n -> Printf.printf "   %d events verified — not caught (?)\n" n
  | Error e -> Printf.printf "   FAULTY: %s\n%!" e);
  (match Game_run.audit_inputs o ~target:2 with
  | Ok n -> Printf.printf "   honest player2: all %d input events attested\n%!" n
  | Error e -> Printf.printf "   honest player2 failed: %s\n" e);

  print_endline "== §7.5: replay player2's log with analyses attached ==";
  let net = o.Game_run.net in
  let log = Avm_core.Avmm.log (Avm_netsim.Net.node_avmm (Avm_netsim.Net.node net 2)) in
  let entries =
    Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log)
  in
  let taint = Taint.create ~sink_ports:[] () in
  let profile = Profile.create () in
  let ammo = Guests.game_symbol "g_ammo" in
  let watch = Watchpoints.create ~addrs:[ ammo ] in
  let r =
    Forensics.replay
      ~image:(Game_run.reference_image ())
      ~mem_words:Guests.mem_words
      ~peers:(Avm_netsim.Net.peers net)
      ~entries ~taint ~profile ~watch ()
  in
  Format.printf "   semantic check: %a@." Avm_core.Replay.pp_outcome r.Forensics.outcome;
  Printf.printf "   taint: %d policy findings, %d words currently network-derived\n"
    (List.length r.Forensics.taint_findings)
    (Taint.tainted_words taint);
  let hits = r.Forensics.watch_hits in
  Printf.printf "   ammo watchpoint: %d writes; last values: [%s]\n" (List.length hits)
    (String.concat "; "
       (List.filteri (fun i _ -> i < 8)
          (List.rev_map (fun h -> string_of_int h.Watchpoints.value) hits)));
  (match r.Forensics.profile with
  | Some p ->
    print_string
      (String.concat "\n"
         (List.map (fun l -> "   " ^ l)
            (String.split_on_char '\n' (Profile.report p ~image:(Game_run.reference_image ())))))
  | None -> ());
  print_newline ();
  print_endline
    "== the point: none of this cost the live system anything — it all ran on the log =="
