examples/multiparty_audit.ml: Audit Avm_core Avm_netsim Avm_scenario Avm_tamperlog Avmm Config Evidence Game_run Guests List Multiparty Printf
