examples/replay_forensics.mli:
