examples/multiparty_audit.mli:
