examples/quickstart.ml: Array Audit Avm_core Avm_crypto Avm_isa Avm_mlang Avm_tamperlog Avm_util Avmm Config Evidence Format Printf Queue Replay Wireformat
