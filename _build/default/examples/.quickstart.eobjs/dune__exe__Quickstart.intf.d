examples/quickstart.mli:
