examples/auction_audit.ml: Array Auction_run Avm_core Avm_scenario List Printf String
