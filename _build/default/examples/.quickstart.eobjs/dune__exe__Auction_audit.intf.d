examples/auction_audit.mli:
