examples/game_cheat_detection.mli:
