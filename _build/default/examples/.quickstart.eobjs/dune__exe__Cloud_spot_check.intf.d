examples/cloud_spot_check.mli:
