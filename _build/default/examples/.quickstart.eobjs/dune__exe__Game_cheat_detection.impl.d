examples/game_cheat_detection.ml: Array Audit Avm_core Avm_netsim Avm_scenario Avm_tamperlog Avmm Cheats Config Evidence Game_run Guests List Multiparty Printf Replay String
