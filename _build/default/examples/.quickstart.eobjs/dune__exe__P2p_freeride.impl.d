examples/p2p_freeride.ml: Array Avm_core Avm_scenario P2p_run Printf String
