examples/replay_forensics.ml: Avm_analysis Avm_core Avm_netsim Avm_scenario Avm_tamperlog Cheats Forensics Format Game_run Guests List Printf Profile String Taint Watchpoints
