examples/p2p_freeride.mli:
