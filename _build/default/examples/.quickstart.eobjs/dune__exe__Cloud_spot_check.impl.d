examples/cloud_spot_check.ml: Avm_core Avm_crypto Avm_machine Avm_netsim Avm_scenario Kv_run List Printf Replay Spot_check
