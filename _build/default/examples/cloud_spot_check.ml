(* The accountable-cloud use case (paper §3.5, §6.12, §7.1): a customer
   runs a key-value service on a provider's machine and, instead of
   replaying everything, spot-checks a few inter-snapshot segments.
   Run with:

     dune exec examples/cloud_spot_check.exe *)

open Avm_scenario
open Avm_core

let () =
  print_endline "== provider runs a kv-store AVM for 60s; snapshots every 10s ==";
  let o = Kv_run.run ~duration_us:60.0e6 ~snapshot_every_us:10_000_000 ~rsa_bits:512 () in
  Printf.printf "   client completed %d operations; server took %d snapshots\n%!"
    o.Kv_run.client_ops
    (List.length o.Kv_run.server_snapshots);

  print_endline "== the customer spot-checks two chunks instead of the whole log ==";
  let full_instr, full_bytes = Kv_run.full_audit_cost o in
  List.iter
    (fun (start, k) ->
      let rep = Kv_run.audit_server_chunk o ~start_snapshot:start ~k in
      let verdict =
        match rep.Spot_check.outcome with
        | Replay.Verified _ -> "verified"
        | Replay.Diverged _ -> "FAULTY"
      in
      Printf.printf
        "   chunk [snapshot %d, +%d segment(s)]: %s — replayed %d instructions (%.0f%% of full), \
         transferred %d B (%.0f%% of full log)\n%!"
        start k verdict rep.Spot_check.replay_instructions
        (100.0 *. float_of_int rep.Spot_check.replay_instructions /. float_of_int full_instr)
        (rep.Spot_check.state_bytes + rep.Spot_check.log_bytes_compressed)
        (100.0
        *. float_of_int (rep.Spot_check.state_bytes + rep.Spot_check.log_bytes_compressed)
        /. float_of_int full_bytes))
    [ (1, 1); (2, 2) ];

  print_endline "== §7.3: disclose only the pages a third party needs ==";
  (* To support evidence (or partial audits), the provider serves
     individual pages with Merkle proofs against the logged snapshot
     root; everything else stays private. *)
  let server = Avm_netsim.Net.node_avmm (Avm_netsim.Net.node o.Kv_run.net 0) in
  let machine = Avm_core.Avmm.machine server in
  let tree = Avm_machine.Snapshot.merkle_of_machine machine in
  let root = Avm_crypto.Merkle.root tree in
  let partial = Avm_machine.Partial_state.extract machine ~pages:[ 0; 1; 17 ] in
  let full_bytes =
    Avm_machine.Memory.page_count (Avm_machine.Machine.mem machine)
    * Avm_machine.Memory.page_size * 4
  in
  Printf.printf
    "   disclosed 3 of %d pages (%d B of %d B), authenticated: %b\n"
    partial.Avm_machine.Partial_state.page_count
    (Avm_machine.Partial_state.disclosed_bytes partial)
    full_bytes
    (Avm_machine.Partial_state.verify partial ~expected_root:root);

  print_endline "== the trade-off (paper §3.5) ==";
  print_endline
    "   spot checks only see faults inside the checked segments; a fault in an\n\
    \   unchecked segment that corrupts state persists invisibly, because later\n\
    \   segments replay from the (equally corrupted) snapshot. Policy matters:\n\
    \   check initialization/authentication segments, sample the rest."
