(* CLI that regenerates every table and figure of the paper's
   evaluation section. See DESIGN.md §4 for the experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured numbers. *)

open Cmdliner
module E = Avm_scenario.Experiments

let experiments =
  [
    ("sanity", "§6.3 functionality check (4 preinstalled cheats)",
     fun s -> ignore (E.sanity ~scale:s ()));
    ("t1", "Table 1: cheat detectability (all 26 cheats)", fun s -> ignore (E.table1 ~scale:s ()));
    ("f3", "Figure 3: log growth over time", fun s -> ignore (E.fig3 ~scale:s ()));
    ("f4", "Figure 4: log content breakdown", fun s -> ignore (E.fig4 ~scale:s ()));
    ("capopt", "§6.5: frame cap and clock-read optimization", fun s -> ignore (E.capopt ~scale:s ()));
    ("audit-cost", "§6.6: audit phases vs play time", fun s -> ignore (E.audit_cost ~scale:s ()));
    ("f5", "Figure 5: ping RTT ladder", fun s -> ignore (E.fig5 ~scale:s ()));
    ("f6", "Figure 6: per-hyperthread CPU utilization", fun s -> ignore (E.fig6 ~scale:s ()));
    ("f7", "Figure 7: frame rate ladder", fun s -> ignore (E.fig7 ~scale:s ()));
    ("traffic", "§6.7: wire traffic", fun s -> ignore (E.traffic ~scale:s ()));
    ("f8", "Figure 8: online auditing", fun s -> ignore (E.fig8 ~scale:s ()));
    ("f9", "Figure 9: spot-check cost", fun s -> ignore (E.fig9 ~scale:s ()));
    ("snapshots", "§6.12: snapshot costs", fun s -> ignore (E.snapshot_costs ~scale:s ()));
  ]

let run_one scale name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) experiments with
  | Some (_, _, f) ->
    f scale;
    `Ok ()
  | None when String.equal name "all" ->
    E.all ~scale ();
    `Ok ()
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; choose from: all %s" name
          (String.concat " " (List.map (fun (n, _, _) -> n) experiments)) )

let name_arg =
  let doc =
    "Which experiment to run: $(b,all) or one of "
    ^ String.concat ", " (List.map (fun (n, _, _) -> n) experiments)
    ^ "."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Shrink durations and key sizes (~8x faster, same shapes)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the AVM paper (OSDI 2010)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the evaluation workloads — a 3-player game and a key-value \
         client/server — under the paper's five configurations and prints \
         each table/figure with the paper's numbers alongside.";
    ]
  in
  let term =
    Term.(
      ret
        (const (fun quick name -> run_one (if quick then E.Quick else E.Full) name)
        $ quick_arg $ name_arg))
  in
  Cmd.v (Cmd.info "experiments" ~doc ~man) term

let () = exit (Cmd.eval cmd)
