(* The guest toolchain as a CLI: compile an mlang source file to an
   AVM-32 image, dump the assembly or a disassembly listing, print the
   symbol table, or run the program right here with console output.

   Examples:
     avm_compile game.mlang --listing
     avm_compile game.mlang --run --fuel 1000000
     avm_compile game.mlang -o game.img *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_image path words =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun w ->
          for i = 0 to 3 do
            output_char oc (Char.chr ((w lsr (8 * i)) land 0xff))
          done)
        words)

let run_image words fuel =
  let m = Avm_machine.Machine.create ~mem_words:65536 words in
  let backend =
    {
      Avm_machine.Machine.null_backend with
      observe =
        (function
        | Avm_machine.Machine.Console c ->
          if c >= 32 && c < 127 then print_char (Char.chr c)
          else Printf.printf "<%d>" c
        | Avm_machine.Machine.Frame -> ()
        | Avm_machine.Machine.Packet_sent p ->
          Printf.printf "<packet: %s>\n"
            (String.concat "," (Array.to_list (Array.map string_of_int p))));
    }
  in
  let n = Avm_machine.Machine.run m backend ~fuel in
  Printf.printf "\n[%d instructions, %s]\n" n
    (if Avm_machine.Machine.halted m then "halted" else "fuel exhausted")

let main source out listing asm symbols run fuel stack_top =
  try
    let src = read_file source in
    let image = Avm_mlang.Compile.compile ~stack_top src in
    let words = image.Avm_isa.Asm.words in
    Printf.printf "%s: %d words\n" source (Array.length words);
    if asm then print_string (Avm_mlang.Compile.compile_to_asm ~stack_top src);
    if listing then print_string (Avm_isa.Disasm.listing words);
    if symbols then
      List.iter (fun (name, addr) -> Printf.printf "%06x %s\n" addr name) image.Avm_isa.Asm.symbols;
    (match out with Some path -> write_image path words | None -> ());
    if run then run_image words fuel;
    0
  with
  | Sys_error e ->
    prerr_endline e;
    2
  | Avm_mlang.Compile.Error { phase; message } ->
    Printf.eprintf "%s error: %s\n" phase message;
    1

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"mlang source file.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o" ] ~docv:"IMG" ~doc:"Write the raw image.")

let listing_arg = Arg.(value & flag & info [ "listing" ] ~doc:"Print a disassembly listing.")
let asm_arg = Arg.(value & flag & info [ "asm" ] ~doc:"Print the generated assembly.")
let symbols_arg = Arg.(value & flag & info [ "symbols" ] ~doc:"Print the symbol table.")
let run_arg = Arg.(value & flag & info [ "run" ] ~doc:"Execute with a null world (console shown).")
let fuel_arg = Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~docv:"N" ~doc:"Run budget.")

let stack_arg =
  Arg.(value & opt int 65536 & info [ "stack-top" ] ~docv:"ADDR" ~doc:"Initial stack pointer.")

let cmd =
  let doc = "compile mlang guests to AVM-32 images" in
  let term =
    Term.(
      const (fun source out listing asm symbols run fuel stack ->
          Stdlib.exit (main source out listing asm symbols run fuel stack))
      $ source_arg $ out_arg $ listing_arg $ asm_arg $ symbols_arg $ run_arg $ fuel_arg
      $ stack_arg)
  in
  Cmd.v (Cmd.info "avm_compile" ~doc) term

let () = Stdlib.exit (Cmd.eval cmd)
