open Avm_isa

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Generator for arbitrary well-formed instructions. *)
let instr_gen =
  let open QCheck2.Gen in
  let reg = int_range 0 15 in
  let imm16s = int_range (-32768) 32767 in
  let imm16u = int_range 0 0xffff in
  let shamt = int_range 0 31 in
  let r3 ctor = map3 (fun a b c -> ctor (a, b, c)) reg reg reg in
  let ri ctor = map3 (fun a b c -> ctor (a, b, c)) reg reg imm16s in
  let riu ctor = map3 (fun a b c -> ctor (a, b, c)) reg reg imm16u in
  let rsh ctor = map3 (fun a b c -> ctor (a, b, c)) reg reg shamt in
  oneof
    [
      return Isa.Halt;
      return Isa.Nop;
      return Isa.Ei;
      return Isa.Di;
      return Isa.Iret;
      map2 (fun a b -> Isa.Mov (a, b)) reg reg;
      map2 (fun a v -> Isa.Movi (a, v)) reg imm16s;
      map2 (fun a v -> Isa.Lui (a, v)) reg imm16u;
      r3 (fun (a, b, c) -> Isa.Add (a, b, c));
      r3 (fun (a, b, c) -> Isa.Sub (a, b, c));
      r3 (fun (a, b, c) -> Isa.Mul (a, b, c));
      r3 (fun (a, b, c) -> Isa.Div (a, b, c));
      r3 (fun (a, b, c) -> Isa.Rem (a, b, c));
      r3 (fun (a, b, c) -> Isa.And (a, b, c));
      r3 (fun (a, b, c) -> Isa.Or (a, b, c));
      r3 (fun (a, b, c) -> Isa.Xor (a, b, c));
      r3 (fun (a, b, c) -> Isa.Shl (a, b, c));
      r3 (fun (a, b, c) -> Isa.Shr (a, b, c));
      r3 (fun (a, b, c) -> Isa.Sar (a, b, c));
      r3 (fun (a, b, c) -> Isa.Slt (a, b, c));
      r3 (fun (a, b, c) -> Isa.Sltu (a, b, c));
      r3 (fun (a, b, c) -> Isa.Seq (a, b, c));
      ri (fun (a, b, c) -> Isa.Addi (a, b, c));
      riu (fun (a, b, c) -> Isa.Andi (a, b, c));
      riu (fun (a, b, c) -> Isa.Ori (a, b, c));
      riu (fun (a, b, c) -> Isa.Xori (a, b, c));
      rsh (fun (a, b, c) -> Isa.Shli (a, b, c));
      rsh (fun (a, b, c) -> Isa.Shri (a, b, c));
      rsh (fun (a, b, c) -> Isa.Sari (a, b, c));
      ri (fun (a, b, c) -> Isa.Load (a, b, c));
      ri (fun (a, b, c) -> Isa.Store (a, b, c));
      map (fun o -> Isa.Jmp o) imm16s;
      map2 (fun a o -> Isa.Jal (a, o)) reg imm16s;
      map (fun a -> Isa.Jr a) reg;
      map2 (fun a b -> Isa.Jalr (a, b)) reg reg;
      ri (fun (a, b, c) -> Isa.Beq (a, b, c));
      ri (fun (a, b, c) -> Isa.Bne (a, b, c));
      ri (fun (a, b, c) -> Isa.Blt (a, b, c));
      ri (fun (a, b, c) -> Isa.Bge (a, b, c));
      ri (fun (a, b, c) -> Isa.Bltu (a, b, c));
      ri (fun (a, b, c) -> Isa.Bgeu (a, b, c));
      map2 (fun a p -> Isa.In (a, p)) reg imm16u;
      map2 (fun a p -> Isa.Out (a, p)) reg imm16u;
    ]

let prop_encode_decode =
  qtest "isa: decode (encode i) = i" instr_gen (fun i -> Isa.decode (Isa.encode i) = i)

let prop_encode_32bit =
  qtest "isa: encoding fits 32 bits" instr_gen (fun i ->
      let w = Isa.encode i in
      w >= 0 && w <= 0xffffffff)

let test_decode_error () =
  Alcotest.check_raises "bad opcode" (Isa.Decode_error 0xff000000) (fun () ->
      ignore (Isa.decode 0xff000000))

let test_is_branch () =
  Alcotest.(check bool) "jmp" true (Isa.is_branch (Isa.Jmp 1));
  Alcotest.(check bool) "beq" true (Isa.is_branch (Isa.Beq (0, 1, 2)));
  Alcotest.(check bool) "jalr" true (Isa.is_branch (Isa.Jalr (1, 2)));
  Alcotest.(check bool) "add" false (Isa.is_branch (Isa.Add (1, 2, 3)));
  Alcotest.(check bool) "in" false (Isa.is_branch (Isa.In (1, 0x20)))

let test_reg_names () =
  Alcotest.(check string) "r0" "r0" (Isa.reg_name 0);
  Alcotest.(check string) "fp" "fp" (Isa.reg_name 12);
  Alcotest.(check string) "sp" "sp" (Isa.reg_name 13);
  Alcotest.(check string) "lr" "lr" (Isa.reg_name 14);
  Alcotest.(check string) "at" "at" (Isa.reg_name 15)

let test_port_names () =
  Alcotest.(check string) "clock" "CLOCK" (Isa.port_name Isa.port_clock);
  Alcotest.(check string) "unknown" "0x9999" (Isa.port_name 0x9999);
  Alcotest.(check int) "lookup" Isa.port_clock (List.assoc "CLOCK" Isa.named_ports)

(* --- Assembler --------------------------------------------------------------- *)

let assemble_ok src = Asm.assemble src

let test_asm_forward_backward_labels () =
  let img =
    assemble_ok
      {|
  start:
      jmp  fwd
      nop
  fwd:
      beq  r1, r2, start
      halt
  |}
  in
  Alcotest.(check int) "words" 4 (Array.length img.Asm.words);
  (match Isa.decode img.Asm.words.(0) with
  | Isa.Jmp 1 -> ()
  | i -> Alcotest.failf "expected jmp 1, got %s" (Isa.to_string i));
  match Isa.decode img.Asm.words.(2) with
  | Isa.Beq (1, 2, -3) -> ()
  | i -> Alcotest.failf "expected beq -3, got %s" (Isa.to_string i)

let test_asm_li_expansion () =
  let small = assemble_ok "li r1, 100" in
  Alcotest.(check int) "small is movi" 1 (Array.length small.Asm.words);
  let big = assemble_ok "li r1, 0x12345678" in
  Alcotest.(check int) "big is lui+ori" 2 (Array.length big.Asm.words);
  (match (Isa.decode big.Asm.words.(0), Isa.decode big.Asm.words.(1)) with
  | Isa.Lui (1, 0x1234), Isa.Ori (1, 1, 0x5678) -> ()
  | _ -> Alcotest.fail "bad li expansion");
  let neg = assemble_ok "li r1, -7" in
  match Isa.decode neg.Asm.words.(0) with
  | Isa.Movi (1, -7) -> ()
  | _ -> Alcotest.fail "negative li"

let test_asm_la_and_li_symbol () =
  let img = assemble_ok "la r1, target\nli r2, target\ntarget: .word 42" in
  Alcotest.(check int) "la is 2 words" 5 (Array.length img.Asm.words);
  Alcotest.(check int) "symbol" 4 (Asm.symbol img "target");
  Alcotest.(check int) "data" 42 img.Asm.words.(4)

let test_asm_pseudos () =
  let img = assemble_ok "push r3\npop r4\nret\ncall f\nf: halt" in
  (* push=2, pop=2, ret=1, call=1, halt=1 *)
  Alcotest.(check int) "expanded size" 7 (Array.length img.Asm.words);
  match Isa.decode img.Asm.words.(6) with
  | Isa.Halt -> ()
  | _ -> Alcotest.fail "halt at end"

let test_asm_equ_and_ports () =
  let img = assemble_ok ".equ MYPORT 0x42\nin r1, MYPORT\nout r2, CLOCK" in
  (match Isa.decode img.Asm.words.(0) with
  | Isa.In (1, 0x42) -> ()
  | _ -> Alcotest.fail "equ port");
  match Isa.decode img.Asm.words.(1) with
  | Isa.Out (2, p) when p = Isa.port_clock -> ()
  | _ -> Alcotest.fail "named port"

let test_asm_space_and_char () =
  let img = assemble_ok ".space 3\nmovi r1, 'A'" in
  Alcotest.(check int) "size" 4 (Array.length img.Asm.words);
  Alcotest.(check int) "zeroed" 0 img.Asm.words.(1);
  match Isa.decode img.Asm.words.(3) with
  | Isa.Movi (1, 65) -> ()
  | _ -> Alcotest.fail "char literal"

let expect_asm_error ~line src =
  match Asm.assemble src with
  | _ -> Alcotest.failf "expected failure on %S" src
  | exception Asm.Error e -> Alcotest.(check int) "error line" line e.line

let test_asm_errors () =
  expect_asm_error ~line:1 "bogus r1, r2";
  expect_asm_error ~line:2 "nop\nmovi r1, 99999";
  expect_asm_error ~line:1 "jmp nowhere";
  expect_asm_error ~line:2 "dup: nop\ndup: nop";
  expect_asm_error ~line:1 "movi rx, 3";
  expect_asm_error ~line:1 "addi r1, r2";
  expect_asm_error ~line:1 ".word";
  expect_asm_error ~line:1 ".space -4"

let test_asm_comments_and_blank_lines () =
  let img = assemble_ok "; leading comment\n\n   nop ; trailing\n\nhalt" in
  Alcotest.(check int) "two instrs" 2 (Array.length img.Asm.words)

let test_disasm () =
  Alcotest.(check string) "add" "add r1, r2, r3" (Disasm.instruction (Isa.encode (Isa.Add (1, 2, 3))));
  Alcotest.(check string) "data" ".word 4278190080" (Disasm.instruction 0xff000000);
  let img = assemble_ok "nop\nhalt" in
  let listing = Disasm.listing img.Asm.words in
  Alcotest.(check bool) "has nop" true
    (String.length listing > 0
    &&
    let lines = String.split_on_char '\n' listing in
    List.length lines = 3)

let prop_disasm_never_raises =
  qtest "disasm: total on arbitrary words" QCheck2.Gen.(int_range 0 0xffffffff) (fun w ->
      ignore (Disasm.instruction w);
      true)

let () =
  Alcotest.run "isa"
    [
      ( "encoding",
        [
          Alcotest.test_case "decode error" `Quick test_decode_error;
          Alcotest.test_case "is_branch" `Quick test_is_branch;
          Alcotest.test_case "register names" `Quick test_reg_names;
          Alcotest.test_case "port names" `Quick test_port_names;
          prop_encode_decode;
          prop_encode_32bit;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "labels fwd/back" `Quick test_asm_forward_backward_labels;
          Alcotest.test_case "li expansion" `Quick test_asm_li_expansion;
          Alcotest.test_case "la and li of symbols" `Quick test_asm_la_and_li_symbol;
          Alcotest.test_case "pseudo instructions" `Quick test_asm_pseudos;
          Alcotest.test_case ".equ and named ports" `Quick test_asm_equ_and_ports;
          Alcotest.test_case ".space and chars" `Quick test_asm_space_and_char;
          Alcotest.test_case "errors carry line numbers" `Quick test_asm_errors;
          Alcotest.test_case "comments and blanks" `Quick test_asm_comments_and_blank_lines;
        ] );
      ( "disasm",
        [
          Alcotest.test_case "known renderings" `Quick test_disasm;
          prop_disasm_never_raises;
        ] );
    ]
