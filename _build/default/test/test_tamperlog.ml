open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Rng = Avm_util.Rng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let rng = Rng.create 2024L
let ca = Identity.create_ca rng ~bits:512 "ca"
let alice = Identity.issue ca rng ~bits:512 "alice"
let bob = Identity.issue ca rng ~bits:512 "bob"

let sample_contents =
  [
    Entry.Send { dest = "bob"; nonce = 1; payload = "hello" };
    Entry.Recv { src = "bob"; nonce = 4; payload = "re: hello"; signature = "sig" };
    Entry.Exec (Avm_machine.Event.Io_in { port = 0x20; value = 12345; msg = -1 });
    Entry.Exec
      (Avm_machine.Event.Irq
         { landmark = { Avm_machine.Landmark.icount = 99; pc = 7; branches = 3 }; line = 1 });
    Entry.Ack { src = "bob"; acked_seq = 1; signature = "acksig" };
    Entry.Snapshot_ref { digest = String.make 32 'd'; snapshot_seq = 0; at_icount = 500 };
    Entry.Note "game start";
  ]

let build_log contents =
  let log = Log.create () in
  List.iter (fun c -> ignore (Log.append log c)) contents;
  log

let full_segment log = Log.segment log ~from:1 ~upto:(Log.length log)

(* --- hash chain ---------------------------------------------------------- *)

let test_chain_verifies () =
  let log = build_log sample_contents in
  Alcotest.(check int) "length" (List.length sample_contents) (Log.length log);
  match Log.verify_segment ~prev:Log.genesis_hash (full_segment log) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_partial_segment_verifies () =
  let log = build_log sample_contents in
  let seg = Log.segment log ~from:3 ~upto:5 in
  Alcotest.(check int) "segment size" 3 (List.length seg);
  match Log.verify_segment ~prev:(Log.prev_hash log 3) seg with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_tamper_replace_detected () =
  let log = build_log sample_contents in
  Log.tamper_replace log 2 (Entry.Note "innocuous");
  match Log.verify_segment ~prev:Log.genesis_hash (full_segment log) with
  | Ok () -> Alcotest.fail "tampering not detected"
  | Error e -> Alcotest.(check bool) "mentions entry" true (String.length e > 0)

let test_tamper_reseal_passes_chain () =
  (* The stronger attacker: rewrite history and recompute all hashes.
     The chain itself verifies — only authenticators catch this. *)
  let log = build_log sample_contents in
  let a2 =
    let e = Log.entry log 2 in
    Auth.make alice ~entry:e ~prev_hash:(Log.prev_hash log 2)
  in
  Log.tamper_reseal log 2 (Entry.Note "rewritten");
  (match Log.verify_segment ~prev:Log.genesis_hash (full_segment log) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resealed chain should verify: %s" e);
  (* ... but the previously issued authenticator no longer matches. *)
  Alcotest.(check bool) "auth mismatch" false (Auth.matches_entry a2 (Log.entry log 2))

let test_fork_detected_by_auths () =
  let log = build_log [ List.hd sample_contents ] in
  let fork = Log.fork log in
  ignore (Log.append log (Entry.Note "branch A"));
  ignore (Log.append fork (Entry.Note "branch B"));
  let auth_a = Auth.make alice ~entry:(Log.entry log 2) ~prev_hash:(Log.prev_hash log 2) in
  (* Branch B's entry 2 conflicts with the authenticator from branch A. *)
  Alcotest.(check bool) "conflict" false (Auth.matches_entry auth_a (Log.entry fork 2))

let test_truncate () =
  let log = build_log sample_contents in
  Log.tamper_truncate log 3;
  Alcotest.(check int) "shorter" 3 (Log.length log)

let test_sequence_gap_detected () =
  let log = build_log sample_contents in
  let seg = [ Log.entry log 1; Log.entry log 3 ] in
  match Log.verify_segment ~prev:Log.genesis_hash seg with
  | Ok () -> Alcotest.fail "gap not detected"
  | Error e -> Alcotest.(check bool) "mentions gap" true (String.length e > 0)

let test_byte_size_counts () =
  let log = build_log sample_contents in
  let manual =
    List.fold_left (fun acc e -> acc + Entry.wire_size e) 0 (full_segment log)
  in
  Alcotest.(check int) "byte_size" manual (Log.byte_size log)

(* --- entry serialization ---------------------------------------------------- *)

let test_segment_roundtrip () =
  let log = build_log sample_contents in
  let seg = full_segment log in
  let seg' = Log.decode_segment ~prev:Log.genesis_hash (Log.encode_segment seg) in
  Alcotest.(check bool) "entries equal incl. recomputed hashes" true (seg = seg');
  (* a mid-log segment round-trips given the correct prev *)
  let mid = Log.segment log ~from:3 ~upto:5 in
  let mid' = Log.decode_segment ~prev:(Log.prev_hash log 3) (Log.encode_segment mid) in
  Alcotest.(check bool) "mid segment" true (mid = mid');
  (* hashes are not on the wire: corrupting content changes the
     recomputed chain, so previously issued authenticators expose it *)
  let a5 = Auth.make alice ~entry:(Log.entry log 5) ~prev_hash:(Log.prev_hash log 5) in
  let blob = Log.encode_segment seg in
  let corrupted = Bytes.of_string blob in
  (* flip a content byte of entry 1, upstream of entry 5 *)
  Bytes.set corrupted 5 (Char.chr (Char.code (Bytes.get corrupted 5) lxor 1));
  (match Log.decode_segment ~prev:Log.genesis_hash (Bytes.to_string corrupted) with
  | decoded ->
    let e5 = List.nth decoded 4 in
    Alcotest.(check bool) "auth exposes corruption" false (Auth.matches_entry a5 e5)
  | exception Avm_util.Wire.Malformed _ -> () (* also acceptable: framing broke *))

let test_content_bytes_stable () =
  (* The hash preimage must not change across versions: pin one. *)
  let c = Entry.Send { dest = "bob"; nonce = 1; payload = "hello" } in
  Alcotest.(check string) "canonical bytes" "\x03bob\x01\x05hello" (Entry.content_bytes c)

let test_bad_tag_rejected () =
  Alcotest.(check bool) "tag 99" true
    (match Entry.content_of_bytes ~tag:99 "" with
    | _ -> false
    | exception Avm_util.Wire.Malformed _ -> true)

let prop_content_roundtrip =
  let open QCheck2.Gen in
  let gen =
    oneof
      [
        map3
          (fun dest nonce payload -> Entry.Send { dest; nonce; payload })
          string nat string;
        map3
          (fun src nonce payload -> Entry.Recv { src; nonce; payload; signature = "s" })
          string nat string;
        map2 (fun src acked_seq -> Entry.Ack { src; acked_seq; signature = "x" }) string nat;
        map (fun s -> Entry.Note s) string;
      ]
  in
  qtest ~count:200 "entry: content roundtrip" gen (fun c ->
      Entry.content_of_bytes ~tag:(Entry.type_tag c) (Entry.content_bytes c) = c)

let test_entry_wire_size_compact () =
  (* Guard: the wire encoding must stay hash-free — a clock event is a
     dozen-odd bytes, not 45+. Fig. 3/4 magnitudes depend on this. *)
  let log = build_log sample_contents in
  let clock_entry = Log.entry log 3 in
  Alcotest.(check bool) "compact exec entry" true (Entry.wire_size clock_entry < 20);
  (* and the in-memory hash is still present and correct *)
  Alcotest.(check int) "hash present" 32 (String.length clock_entry.Entry.hash)

(* --- authenticators ------------------------------------------------------------- *)

let test_auth_verify () =
  let log = build_log sample_contents in
  let e = Log.entry log 1 in
  let a = Auth.make alice ~entry:e ~prev_hash:(Log.prev_hash log 1) in
  Alcotest.(check bool) "verifies" true (Auth.verify (Identity.certificate alice) a);
  Alcotest.(check bool) "wrong cert" false (Auth.verify (Identity.certificate bob) a);
  Alcotest.(check bool) "matches entry" true (Auth.matches_entry a e)

let test_auth_matches_send () =
  let log = build_log sample_contents in
  let a = Auth.make alice ~entry:(Log.entry log 1) ~prev_hash:Log.genesis_hash in
  Alcotest.(check bool) "send" true (Auth.matches_send a ~payload:"hello" ~dest:"bob" ~nonce:1);
  Alcotest.(check bool) "wrong payload" false
    (Auth.matches_send a ~payload:"evil" ~dest:"bob" ~nonce:1);
  Alcotest.(check bool) "wrong nonce" false
    (Auth.matches_send a ~payload:"hello" ~dest:"bob" ~nonce:2)

let test_auth_tampered_hash () =
  let log = build_log sample_contents in
  let a = Auth.make alice ~entry:(Log.entry log 1) ~prev_hash:Log.genesis_hash in
  let bad = { a with Auth.hash = String.make 32 'x' } in
  Alcotest.(check bool) "bad hash" false (Auth.verify (Identity.certificate alice) bad)

let test_auth_roundtrip () =
  let log = build_log sample_contents in
  let a = Auth.make alice ~entry:(Log.entry log 1) ~prev_hash:Log.genesis_hash in
  Alcotest.(check bool) "roundtrip" true (Auth.decode (Auth.encode a) = a)

let () =
  Alcotest.run "tamperlog"
    [
      ( "chain",
        [
          Alcotest.test_case "honest chain verifies" `Quick test_chain_verifies;
          Alcotest.test_case "partial segment verifies" `Quick test_partial_segment_verifies;
          Alcotest.test_case "naive tamper detected" `Quick test_tamper_replace_detected;
          Alcotest.test_case "resealed tamper beats chain, not auths" `Quick
            test_tamper_reseal_passes_chain;
          Alcotest.test_case "fork detected by auths" `Quick test_fork_detected_by_auths;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "sequence gap" `Quick test_sequence_gap_detected;
          Alcotest.test_case "byte accounting" `Quick test_byte_size_counts;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
          Alcotest.test_case "canonical bytes pinned" `Quick test_content_bytes_stable;
          Alcotest.test_case "bad tag" `Quick test_bad_tag_rejected;
          Alcotest.test_case "wire size compact (no hashes)" `Quick test_entry_wire_size_compact;
          prop_content_roundtrip;
        ] );
      ( "authenticators",
        [
          Alcotest.test_case "verify" `Quick test_auth_verify;
          Alcotest.test_case "matches_send" `Quick test_auth_matches_send;
          Alcotest.test_case "tampered hash" `Quick test_auth_tampered_hash;
          Alcotest.test_case "wire roundtrip" `Quick test_auth_roundtrip;
        ] );
    ]
