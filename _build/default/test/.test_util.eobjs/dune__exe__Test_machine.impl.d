test/test_machine.ml: Alcotest Array Avm_crypto Avm_isa Avm_machine Avm_util Event Isa Landmark List Machine Memory Partial_state QCheck2 QCheck_alcotest Snapshot String
