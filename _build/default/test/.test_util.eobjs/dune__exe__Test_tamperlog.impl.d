test/test_tamperlog.ml: Alcotest Auth Avm_crypto Avm_machine Avm_tamperlog Avm_util Bytes Char Entry List Log QCheck2 QCheck_alcotest String
