test/test_isa.ml: Alcotest Array Asm Avm_isa Disasm Isa List QCheck2 QCheck_alcotest String
