test/test_compress.ml: Alcotest Array Avm_compress Bitio Buffer Bytes Codec Huffman List Lzss Printf QCheck2 QCheck_alcotest String
