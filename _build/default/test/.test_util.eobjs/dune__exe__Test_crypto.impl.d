test/test_crypto.ml: Alcotest Avm_crypto Avm_util Bignum Bytes Char Hmac Identity Int64 List Merkle Printf QCheck2 QCheck_alcotest Rsa Sha256 String
