test/test_mlang.mli:
