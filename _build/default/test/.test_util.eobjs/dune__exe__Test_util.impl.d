test/test_util.ml: Alcotest Array Avm_util Float Hex Int64 List QCheck2 QCheck_alcotest Rng Stats String Tablefmt Wire
