test/test_mlang.ml: Alcotest Array Avm_isa Avm_machine Avm_mlang List Queue String
