test/test_netsim.ml: Alcotest Array Avm_core Avm_isa Avm_mlang Avm_netsim Avm_tamperlog Avm_util Config Host List Multiparty Net Sim String
