test/test_tamperlog.mli:
