(* End-to-end compiler tests: compile mlang, run on the machine, check
   console output. *)

let run_program ?(fuel = 2_000_000) ?(inputs = []) src =
  let img = Avm_mlang.Compile.compile ~stack_top:8192 src in
  let m = Avm_machine.Machine.create ~mem_words:8192 img.Avm_isa.Asm.words in
  let outs = ref [] in
  let input_queue = Queue.create () in
  List.iter (fun v -> Queue.add v input_queue) inputs;
  let backend =
    {
      Avm_machine.Machine.null_backend with
      observe =
        (function
        | Avm_machine.Machine.Console c -> outs := c :: !outs
        | Avm_machine.Machine.Frame | Avm_machine.Machine.Packet_sent _ -> ());
      io_in =
        (fun port ->
          if port = Avm_isa.Isa.port_input then
            if Queue.is_empty input_queue then 0 else Queue.pop input_queue
          else if port = Avm_isa.Isa.port_input_avail then Queue.length input_queue
          else 0);
    }
  in
  ignore (Avm_machine.Machine.run m backend ~fuel);
  (List.rev !outs, m)

let check_outputs name src expected =
  let outs, m = run_program src in
  Alcotest.(check bool) (name ^ " halted") true (Avm_machine.Machine.halted m);
  Alcotest.(check (list int)) name expected outs

let test_arithmetic () =
  check_outputs "arithmetic"
    {|
fn main() {
  out(CONSOLE, 2 + 3 * 4);        // precedence: 14
  out(CONSOLE, (2 + 3) * 4);      // 20
  out(CONSOLE, 17 / 5);           // 3
  out(CONSOLE, 17 % 5);           // 2
  out(CONSOLE, 1 << 10);          // 1024
  out(CONSOLE, 1024 >> 3);        // 128
  out(CONSOLE, 12 & 10);          // 8
  out(CONSOLE, 12 | 10);          // 14
  out(CONSOLE, 12 ^ 10);          // 6
  halt();
}
|}
    [ 14; 20; 3; 2; 1024; 128; 8; 14; 6 ]

let test_signed_arithmetic () =
  (* Console values are 32-bit words; -3 shows up as 2^32-3. *)
  let wrap v = v land 0xffffffff in
  check_outputs "signed"
    {|
fn main() {
  out(CONSOLE, 0 - 3);
  out(CONSOLE, -7 / 2);     // trunc toward zero: -3
  out(CONSOLE, -7 % 2);     // -1
  out(CONSOLE, -1 < 1);     // signed compare: 1
  out(CONSOLE, ~0);         // all ones
  out(CONSOLE, -(-5));
  halt();
}
|}
    [ wrap (-3); wrap (-3); wrap (-1); 1; 0xffffffff; 5 ]

let test_comparisons_and_logic () =
  check_outputs "comparisons"
    {|
fn main() {
  out(CONSOLE, 3 == 3);
  out(CONSOLE, 3 != 3);
  out(CONSOLE, 2 < 3);
  out(CONSOLE, 3 <= 3);
  out(CONSOLE, 3 > 3);
  out(CONSOLE, 3 >= 4);
  out(CONSOLE, 1 && 2);    // normalized to 1
  out(CONSOLE, 0 || 5);
  out(CONSOLE, !3);
  out(CONSOLE, !0);
  halt();
}
|}
    [ 1; 0; 1; 1; 0; 0; 1; 1; 0; 1 ]

let test_short_circuit () =
  (* The right side of && / || must not run when short-circuited; side
     effects through a global prove it. *)
  check_outputs "short circuit"
    {|
global hits;
fn bump() { hits = hits + 1; return 1; }
fn main() {
  var a = 0 && bump();
  var b = 1 || bump();
  out(CONSOLE, hits);      // 0: neither ran
  var c = 1 && bump();
  var d = 0 || bump();
  out(CONSOLE, hits);      // 2: both ran
  out(CONSOLE, a + b + c + d);  // 0+1+1+1
  halt();
}
|}
    [ 0; 2; 3 ]

let test_recursion () =
  check_outputs "fib/ack"
    {|
fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
fn ack(m, n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
fn main() {
  out(CONSOLE, fib(15));    // 610
  out(CONSOLE, ack(2, 3));  // 9
  halt();
}
|}
    [ 610; 9 ]

let test_globals_and_arrays () =
  check_outputs "globals"
    {|
global counter = 5;
global grid[16];
global pair[2] = { 7, 8 };
fn main() {
  counter = counter + 1;
  var i = 0;
  while (i < 16) { grid[i] = i * 3; i = i + 1; }
  out(CONSOLE, counter);        // 6
  out(CONSOLE, grid[5]);        // 15
  out(CONSOLE, grid[15]);       // 45
  out(CONSOLE, pair[0] + pair[1]); // 15
  grid[grid[1]] = 99;           // grid[3] = 99
  out(CONSOLE, grid[3]);
  halt();
}
|}
    [ 6; 15; 45; 15; 99 ]

let test_while_break_continue () =
  check_outputs "loops"
    {|
fn main() {
  var i = 0;
  var sum = 0;
  while (1) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    sum = sum + i;            // 1+3+5+7+9
  }
  out(CONSOLE, sum);
  var nested = 0;
  var a = 0;
  while (a < 3) {
    var b = 0;
    while (b < 3) {
      if (b == 2) { break; }
      nested = nested + 1;
      b = b + 1;
    }
    a = a + 1;
  }
  out(CONSOLE, nested);       // 6
  halt();
}
|}
    [ 25; 6 ]

let test_else_if_chain () =
  check_outputs "else if"
    {|
fn classify(x) {
  if (x < 0) { return 1; }
  else if (x == 0) { return 2; }
  else if (x < 10) { return 3; }
  else { return 4; }
}
fn main() {
  out(CONSOLE, classify(0 - 5));
  out(CONSOLE, classify(0));
  out(CONSOLE, classify(7));
  out(CONSOLE, classify(70));
  halt();
}
|}
    [ 1; 2; 3; 4 ]

let test_inputs_builtin () =
  let outs, _ =
    run_program ~inputs:[ 42; 17 ]
      {|
fn main() {
  out(CONSOLE, in(INPUT_AVAIL));  // 2
  out(CONSOLE, in(INPUT));        // 42
  out(CONSOLE, in(INPUT));        // 17
  out(CONSOLE, in(INPUT));        // 0 when empty
  halt();
}
|}
  in
  Alcotest.(check (list int)) "inputs" [ 2; 42; 17; 0 ] outs

let test_interrupt_handler () =
  let src =
    {|
global ticks;
interrupt fn on_tick() { ticks = ticks + 1; }
fn main() {
  ivt(on_tick);
  ei();
  var spin = 0;
  while (spin < 30000) { spin = spin + 1; }
  di();
  out(CONSOLE, ticks);
  halt();
}
|}
  in
  let img = Avm_mlang.Compile.compile ~stack_top:8192 src in
  let m = Avm_machine.Machine.create ~mem_words:8192 img.Avm_isa.Asm.words in
  let outs = ref [] in
  let fired = ref 0 in
  let backend =
    {
      Avm_machine.Machine.null_backend with
      observe =
        (function Avm_machine.Machine.Console c -> outs := c :: !outs | _ -> ());
      poll_irq =
        (fun () ->
          if !fired < 5 && Avm_machine.Machine.icount m > 1000 * (!fired + 1) then begin
            incr fired;
            Some 0
          end
          else None);
    }
  in
  ignore (Avm_machine.Machine.run m backend ~fuel:3_000_000);
  Alcotest.(check (list int)) "all 5 ticks counted" [ 5 ] (List.rev !outs)

let test_interrupt_preserves_registers () =
  (* A handler clobbering scratch registers must not corrupt main. *)
  let src =
    {|
global junk;
interrupt fn noisy() {
  var a = 123 * 456;
  var b = a / 7;
  junk = junk + b;
}
fn main() {
  ivt(noisy);
  ei();
  var acc = 0;
  var i = 0;
  while (i < 5000) {
    acc = acc + (i * 3) - (i * 2) - i + 1;   // stays i+... => acc = 5000
    i = i + 1;
  }
  out(CONSOLE, acc);
  halt();
}
|}
  in
  let img = Avm_mlang.Compile.compile ~stack_top:8192 src in
  let m = Avm_machine.Machine.create ~mem_words:8192 img.Avm_isa.Asm.words in
  let outs = ref [] in
  let count = ref 0 in
  let backend =
    {
      Avm_machine.Machine.null_backend with
      observe =
        (function Avm_machine.Machine.Console c -> outs := c :: !outs | _ -> ());
      poll_irq =
        (fun () ->
          incr count;
          if !count mod 97 = 0 then Some 0 else None);
    }
  in
  ignore (Avm_machine.Machine.run m backend ~fuel:5_000_000);
  Alcotest.(check (list int)) "main unperturbed" [ 5000 ] (List.rev !outs)

let test_const_expr_ports () =
  (* Port operands accept compile-time constant expressions. *)
  check_outputs "const exprs"
    {|
const BASE = 0x10;
fn main() {
  out(BASE + 0, 65);          // CONSOLE = 0x10
  out(BASE | 0, 66);
  halt();
}
|}
    [ 65; 66 ]

let test_while_zero_never_runs () =
  check_outputs "while(0)"
    {|
fn main() {
  while (0) { out(CONSOLE, 1); }
  out(CONSOLE, 2);
  halt();
}
|}
    [ 2 ]

let test_args_evaluated_left_to_right () =
  check_outputs "arg order"
    {|
global trace;
fn mark(v) { trace = trace * 10 + v; return v; }
fn sum3(a, b, c) { return a + b + c; }
fn main() {
  var s = sum3(mark(1), mark(2), mark(3));
  out(CONSOLE, trace);   // 123 pins left-to-right evaluation
  out(CONSOLE, s);
  halt();
}
|}
    [ 123; 6 ]

let test_deep_recursion_stack () =
  check_outputs "deep recursion"
    {|
fn down(n) { if (n == 0) { return 0; } return down(n - 1) + 1; }
fn main() {
  out(CONSOLE, down(300));
  halt();
}
|}
    [ 300 ]

let expect_compile_error name src =
  match Avm_mlang.Compile.compile src with
  | _ -> Alcotest.failf "%s: expected compile error" name
  | exception Avm_mlang.Compile.Error _ -> ()

let test_compile_errors () =
  expect_compile_error "no main" "fn helper() { return 1; }";
  expect_compile_error "undefined var" "fn main() { out(CONSOLE, nope); }";
  expect_compile_error "undefined fn" "fn main() { missing(); }";
  expect_compile_error "arity" "fn f(a) { return a; } fn main() { f(1, 2); }";
  expect_compile_error "const port" "fn main() { var p = 5; out(p, 1); }";
  expect_compile_error "break outside loop" "fn main() { break; }";
  expect_compile_error "dup function" "fn main() { } fn main() { }";
  expect_compile_error "dup global" "global g; global g;";
  expect_compile_error "dup local" "fn main() { var x = 1; var x = 2; }";
  expect_compile_error "assign const" "const C = 1; fn main() { C = 2; }";
  expect_compile_error "interrupt with params" "interrupt fn h(x) { } fn main() { }";
  expect_compile_error "call interrupt" "interrupt fn h() { } fn main() { h(); }";
  expect_compile_error "ivt of non-handler" "fn h() { } fn main() { ivt(h); }";
  expect_compile_error "syntax" "fn main() { var = 3; }";
  expect_compile_error "unterminated" "fn main() { out(CONSOLE, 1); ";
  expect_compile_error "bad char" "fn main() { out(CONSOLE, $); }"

let test_error_phases () =
  (match Avm_mlang.Compile.compile "fn main() { @ }" with
  | _ -> Alcotest.fail "expected error"
  | exception Avm_mlang.Compile.Error { message; _ } ->
    Alcotest.(check bool) "line info" true
      (String.length message > 0 && String.sub message 0 4 = "line"))

let test_compile_to_asm_is_assemblable () =
  let asm = Avm_mlang.Compile.compile_to_asm "fn main() { out(CONSOLE, 1); halt(); }" in
  let img = Avm_isa.Asm.assemble asm in
  Alcotest.(check bool) "nonempty" true (Array.length img.Avm_isa.Asm.words > 3)

let test_hex_and_char_literals () =
  check_outputs "literals"
    {|
const MASK = 0xFF00;
fn main() {
  out(CONSOLE, 0x10);
  out(CONSOLE, 'A');
  out(CONSOLE, MASK >> 8);
  halt();
}
|}
    [ 16; 65; 255 ]

let test_deep_expression () =
  check_outputs "deep expression"
    {|
fn main() {
  out(CONSOLE, ((((1+2)*(3+4))-5)*2) % 100);   // ((3*7)-5)*2 = 32
  halt();
}
|}
    [ 32 ]

let () =
  Alcotest.run "mlang"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "signed arithmetic" `Quick test_signed_arithmetic;
          Alcotest.test_case "comparisons and logic" `Quick test_comparisons_and_logic;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "globals and arrays" `Quick test_globals_and_arrays;
          Alcotest.test_case "while/break/continue" `Quick test_while_break_continue;
          Alcotest.test_case "else-if chains" `Quick test_else_if_chain;
          Alcotest.test_case "literals" `Quick test_hex_and_char_literals;
          Alcotest.test_case "deep expressions" `Quick test_deep_expression;
          Alcotest.test_case "const-expression ports" `Quick test_const_expr_ports;
          Alcotest.test_case "while(0)" `Quick test_while_zero_never_runs;
          Alcotest.test_case "left-to-right args" `Quick test_args_evaluated_left_to_right;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion_stack;
        ] );
      ( "io",
        [
          Alcotest.test_case "input builtins" `Quick test_inputs_builtin;
          Alcotest.test_case "interrupt handler" `Quick test_interrupt_handler;
          Alcotest.test_case "interrupt preserves registers" `Quick
            test_interrupt_preserves_registers;
        ] );
      ( "errors",
        [
          Alcotest.test_case "rejected programs" `Quick test_compile_errors;
          Alcotest.test_case "error phases carry lines" `Quick test_error_phases;
          Alcotest.test_case "asm output assembles" `Quick test_compile_to_asm_is_assemblable;
        ] );
    ]
