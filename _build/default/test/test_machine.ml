open Avm_machine
open Avm_isa

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let image instrs = Array.map Isa.encode (Array.of_list instrs)

let run_image ?(fuel = 100_000) ?(backend = Machine.null_backend) instrs =
  let m = Machine.create ~mem_words:4096 (image instrs) in
  ignore (Machine.run m backend ~fuel);
  m

(* --- Memory ----------------------------------------------------------------- *)

let test_memory_bounds () =
  let mem = Memory.create ~words:512 in
  Memory.write mem 0 42;
  Memory.write mem 511 7;
  Alcotest.(check int) "read back" 42 (Memory.read mem 0);
  Alcotest.check_raises "oob read" (Memory.Fault 512) (fun () -> ignore (Memory.read mem 512));
  Alcotest.check_raises "neg" (Memory.Fault (-1)) (fun () -> ignore (Memory.read mem (-1)));
  Alcotest.check_raises "oob write" (Memory.Fault 9999) (fun () -> Memory.write mem 9999 1)

let test_memory_mask32 () =
  let mem = Memory.create ~words:16 in
  Memory.write mem 0 (-1);
  Alcotest.(check int) "masked" 0xffffffff (Memory.read mem 0)

let test_memory_dirty_tracking () =
  let mem = Memory.create ~words:(Memory.page_size * 4) in
  Alcotest.(check (list int)) "clean" [] (Memory.dirty_pages mem);
  Memory.write mem 0 1;
  Memory.write mem (Memory.page_size * 2) 1;
  Alcotest.(check (list int)) "two pages" [ 0; 2 ] (Memory.dirty_pages mem);
  Memory.clear_dirty mem;
  Alcotest.(check (list int)) "cleared" [] (Memory.dirty_pages mem)

let test_memory_page_data_roundtrip () =
  let mem = Memory.create ~words:(Memory.page_size * 2) in
  for i = 0 to Memory.page_size - 1 do
    Memory.write mem (Memory.page_size + i) (i * 0x01010101)
  done;
  let data = Memory.page_data mem 1 in
  let mem2 = Memory.create ~words:(Memory.page_size * 2) in
  Memory.set_page_data mem2 1 data;
  for i = 0 to Memory.page_size - 1 do
    Alcotest.(check int) "word" (Memory.read mem (Memory.page_size + i))
      (Memory.read mem2 (Memory.page_size + i))
  done

let test_memory_copy_independent () =
  let mem = Memory.create ~words:64 in
  Memory.write mem 5 1;
  let c = Memory.copy mem in
  Memory.write mem 5 2;
  Alcotest.(check int) "copy unchanged" 1 (Memory.read c 5)

(* --- CPU semantics -------------------------------------------------------------- *)

let test_alu_wrap () =
  let m =
    run_image
      [
        Isa.Lui (1, 0xffff); Isa.Ori (1, 1, 0xffff); (* r1 = 0xffffffff *)
        Isa.Addi (2, 1, 1); (* wraps to 0 *)
        Isa.Mul (3, 1, 1); (* low 32 bits of (2^32-1)^2 = 1 *)
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "add wrap" 0 (Machine.reg m 2);
  Alcotest.(check int) "mul wrap" 1 (Machine.reg m 3)

let test_signed_ops () =
  let m =
    run_image
      [
        Isa.Movi (1, -10);
        Isa.Movi (2, 3);
        Isa.Div (3, 1, 2); (* -3 *)
        Isa.Rem (4, 1, 2); (* -1 *)
        Isa.Movi (5, 0);
        Isa.Div (6, 1, 5); (* div by zero -> 0 *)
        Isa.Rem (7, 1, 5); (* rem by zero -> 0 *)
        Isa.Sari (8, 1, 1); (* -5 *)
        Isa.Shri (9, 1, 28); (* logical: 0xf *)
        Isa.Slt (10, 1, 2); (* -10 < 3 -> 1 *)
        Isa.Sltu (11, 1, 2); (* unsigned: huge > 3 -> 0 *)
        Isa.Halt;
      ]
  in
  let w v = v land 0xffffffff in
  Alcotest.(check int) "div" (w (-3)) (Machine.reg m 3);
  Alcotest.(check int) "rem" (w (-1)) (Machine.reg m 4);
  Alcotest.(check int) "div0" 0 (Machine.reg m 6);
  Alcotest.(check int) "rem0" 0 (Machine.reg m 7);
  Alcotest.(check int) "sar" (w (-5)) (Machine.reg m 8);
  Alcotest.(check int) "shr" 0xf (Machine.reg m 9);
  Alcotest.(check int) "slt" 1 (Machine.reg m 10);
  Alcotest.(check int) "sltu" 0 (Machine.reg m 11)

let test_shift_by_register_masked () =
  let m =
    run_image
      [ Isa.Movi (1, 1); Isa.Movi (2, 33); Isa.Shl (3, 1, 2) (* 33 land 31 = 1 -> 2 *); Isa.Halt ]
  in
  Alcotest.(check int) "shift mod 32" 2 (Machine.reg m 3)

let test_branch_counter () =
  (* 3 taken branches: jmp, taken beq, and the jr; bne not taken. *)
  let m =
    run_image
      [
        Isa.Jmp 0; (* taken, always *)
        Isa.Movi (1, 5);
        Isa.Beq (1, 1, 0); (* taken *)
        Isa.Bne (1, 1, 5); (* not taken *)
        Isa.Movi (2, 6);
        Isa.Jr 3; (* r3 = 0... set first *)
        Isa.Halt;
      ]
  in
  ignore m;
  let m2 =
    run_image
      [
        Isa.Movi (3, 5); (* target of jr *)
        Isa.Jmp 0; (* fallthrough, counts *)
        Isa.Beq (0, 0, 0); (* r0=r0 taken *)
        Isa.Bne (0, 0, 1); (* not taken *)
        Isa.Jr 3; (* to halt *)
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "branches" 3 (Machine.branches m2);
  Alcotest.(check bool) "halted" true (Machine.halted m2)

let test_landmark_fields () =
  let m = run_image [ Isa.Nop; Isa.Nop; Isa.Halt ] in
  let lm = Machine.landmark m in
  Alcotest.(check int) "icount" 3 lm.Landmark.icount;
  Alcotest.(check int) "branches" 0 lm.Landmark.branches

let test_call_return () =
  let m =
    run_image
      [
        Isa.Jal (14, 1); (* call +1: skips halt *)
        Isa.Halt;
        Isa.Movi (1, 99);
        Isa.Jr 14;
      ]
  in
  Alcotest.(check int) "returned" 99 (Machine.reg m 1);
  Alcotest.(check bool) "halted" true (Machine.halted m)

let test_runtime_fault_bad_opcode () =
  let m = Machine.create ~mem_words:64 [| 0xff000000 |] in
  (match Machine.step m Machine.null_backend with
  | _ -> Alcotest.fail "expected fault"
  | exception Machine.Runtime_fault { reason; _ } ->
    Alcotest.(check bool) "reason" true (String.length reason > 0));
  Alcotest.(check bool) "halted after fault" true (Machine.halted m)

let test_runtime_fault_wild_store () =
  let m = Machine.create ~mem_words:64 (image [ Isa.Movi (1, 9999); Isa.Store (2, 1, 0) ]) in
  (match Machine.run m Machine.null_backend ~fuel:10 with
  | _ -> Alcotest.fail "expected fault"
  | exception Machine.Runtime_fault _ -> ());
  Alcotest.(check bool) "halted" true (Machine.halted m)

(* --- Interrupts -------------------------------------------------------------------- *)

let test_interrupt_gating () =
  (* IRQs must not be delivered before EI or inside a handler. *)
  let delivered = ref 0 in
  let backend =
    {
      Machine.null_backend with
      poll_irq =
        (fun () ->
          incr delivered;
          Some 0);
    }
  in
  let m =
    Machine.create ~mem_words:256
      (image [ Isa.Nop; Isa.Nop; Isa.Nop; Isa.Halt ])
  in
  ignore (Machine.run m backend ~fuel:100);
  Alcotest.(check int) "never polled without ei" 0 !delivered

let test_interrupt_flow () =
  (* handler increments r10 then irets; main spins. *)
  let prog =
    [
      Isa.Movi (1, 6); (* ivt target *)
      Isa.Out (1, Isa.port_ivt);
      Isa.Ei;
      Isa.Movi (2, 0);
      Isa.Addi (2, 2, 1); (* 4: spin *)
      Isa.Jmp (-2);
      (* 6: handler *)
      Isa.Addi (10, 10, 1);
      Isa.In (11, Isa.port_irq_cause);
      Isa.Iret;
    ]
  in
  let m = Machine.create ~mem_words:256 (image prog) in
  let sent = ref 0 in
  let backend =
    {
      Machine.null_backend with
      poll_irq =
        (fun () ->
          if !sent < 3 && Machine.icount m mod 50 = 0 then begin
            incr sent;
            Some 5
          end
          else None);
    }
  in
  ignore (Machine.run m backend ~fuel:1000);
  Alcotest.(check int) "three interrupts" 3 (Machine.reg m 10);
  Alcotest.(check int) "irq cause" 5 (Machine.reg m 11)

(* --- Devices ------------------------------------------------------------------------ *)

let test_disk_readback () =
  let prog =
    [
      Isa.Movi (1, 3);
      Isa.Out (1, Isa.port_disk_sector);
      Isa.Movi (2, 10);
      Isa.Out (2, Isa.port_disk_word);
      Isa.Movi (3, 1234);
      Isa.Out (3, Isa.port_disk_write);
      (* read it back *)
      Isa.Out (2, Isa.port_disk_word);
      Isa.In (4, Isa.port_disk_read);
      Isa.Halt;
    ]
  in
  let m = run_image prog in
  Alcotest.(check int) "disk word" 1234 (Machine.reg m 4)

let test_tx_buffer_flush () =
  let packets = ref [] in
  let backend =
    {
      Machine.null_backend with
      observe =
        (function
        | Machine.Packet_sent p -> packets := p :: !packets
        | Machine.Console _ | Machine.Frame -> ());
    }
  in
  let prog =
    [
      Isa.Movi (1, 7);
      Isa.Out (1, Isa.port_net_tx);
      Isa.Movi (1, 8);
      Isa.Out (1, Isa.port_net_tx);
      Isa.Out (1, Isa.port_net_tx_send);
      Isa.Movi (1, 9);
      Isa.Out (1, Isa.port_net_tx);
      Isa.Out (1, Isa.port_net_tx_send);
      Isa.Halt;
    ]
  in
  ignore (run_image ~backend prog);
  Alcotest.(check int) "two packets" 2 (List.length !packets);
  Alcotest.(check (array int)) "first" [| 7; 8 |] (List.nth (List.rev !packets) 0);
  Alcotest.(check (array int)) "second" [| 9 |] (List.nth (List.rev !packets) 1)

let test_frames_and_console () =
  let prog =
    [
      Isa.Movi (1, 65);
      Isa.Out (1, Isa.port_console);
      Isa.Out (1, Isa.port_frame);
      Isa.Out (1, Isa.port_frame);
      Isa.Halt;
    ]
  in
  let m = run_image prog in
  Alcotest.(check int) "frames" 2 (Machine.frames m);
  Alcotest.(check int) "console chars" 1 (Machine.console_chars m)

(* --- Determinism ---------------------------------------------------------------------- *)

let test_determinism_same_backend () =
  (* Two machines with identical inputs end bit-identical. *)
  let prog =
    [
      Isa.In (1, Isa.port_clock);
      Isa.In (2, Isa.port_rng);
      Isa.Add (3, 1, 2);
      Isa.Store (3, 0, 100);
      Isa.Halt;
    ]
  in
  let mk () =
    let m = Machine.create ~mem_words:4096 (image prog) in
    let vals = ref [ 111; 222 ] in
    let backend =
      {
        Machine.null_backend with
        io_in =
          (fun _ ->
            match !vals with
            | v :: rest ->
              vals := rest;
              v
            | [] -> 0);
      }
    in
    ignore (Machine.run m backend ~fuel:100);
    m
  in
  Alcotest.(check bool) "state equal" true (Machine.state_equal (mk ()) (mk ()))

let test_meta_roundtrip () =
  let prog = [ Isa.Movi (1, 42); Isa.Out (1, Isa.port_frame); Isa.Ei; Isa.Halt ] in
  let m = run_image prog in
  let blob = Machine.serialize_meta m in
  let m2 = Machine.create ~mem_words:4096 (image prog) in
  Machine.restore_meta m2 blob;
  Alcotest.(check string) "meta equal" blob (Machine.serialize_meta m2);
  Alcotest.(check int) "reg restored" 42 (Machine.reg m2 1);
  Alcotest.(check int) "frames restored" 1 (Machine.frames m2)

let test_meta_garbage () =
  let m = Machine.create ~mem_words:64 [| Isa.encode Isa.Halt |] in
  Alcotest.(check bool) "garbage rejected" true
    (match Machine.restore_meta m "garbage" with
    | () -> false
    | exception (Avm_util.Wire.Truncated | Avm_util.Wire.Malformed _) -> true)

(* --- Snapshots ------------------------------------------------------------------------- *)

let counting_prog =
  [
    Isa.Movi (1, 0);
    Isa.Addi (1, 1, 1);
    Isa.Store (1, 0, 200);
    Isa.Jmp (-3);
  ]

let test_snapshot_incremental_materialize () =
  let img = image counting_prog in
  let m = Machine.create ~mem_words:4096 img in
  let tr = Snapshot.tracker () in
  let s0 = Snapshot.take tr m in
  Alcotest.(check bool) "first full" true s0.Snapshot.full;
  ignore (Machine.run m Machine.null_backend ~fuel:100);
  let s1 = Snapshot.take tr m in
  Alcotest.(check bool) "second incremental" false s1.Snapshot.full;
  ignore (Machine.run m Machine.null_backend ~fuel:100);
  let s2 = Snapshot.take tr m in
  let m' = Snapshot.materialize ~mem_words:4096 ~image:img [ s0; s1; s2 ] in
  Alcotest.(check bool) "materialized equal" true (Machine.state_equal m m');
  Alcotest.(check bool) "root verifies" true (Snapshot.verify m' ~expected_root:s2.Snapshot.root)

let test_snapshot_incremental_smaller () =
  let img = image counting_prog in
  let m = Machine.create ~mem_words:65536 img in
  let tr = Snapshot.tracker () in
  let s0 = Snapshot.take tr m in
  ignore (Machine.run m Machine.null_backend ~fuel:50);
  let s1 = Snapshot.take tr m in
  Alcotest.(check bool) "much smaller" true
    (Snapshot.size_bytes s1 * 10 < Snapshot.size_bytes s0)

let test_snapshot_encode_decode () =
  let img = image counting_prog in
  let m = Machine.create ~mem_words:4096 img in
  let tr = Snapshot.tracker () in
  ignore (Machine.run m Machine.null_backend ~fuel:70);
  let s = Snapshot.take tr m in
  let s' = Snapshot.decode (Snapshot.encode s) in
  Alcotest.(check bool) "equal" true (s = s');
  Alcotest.(check string) "digest stable" (Snapshot.state_digest s) (Snapshot.state_digest s')

let test_snapshot_digest_detects_poke () =
  let img = image counting_prog in
  let m = Machine.create ~mem_words:4096 img in
  let tr = Snapshot.tracker () in
  ignore (Machine.run m Machine.null_backend ~fuel:60);
  let s = Snapshot.take tr m in
  (* an identical machine with one poked word must not verify *)
  let m2 = Snapshot.materialize ~mem_words:4096 ~image:img [ s ] in
  Memory.write (Machine.mem m2) 3000 77;
  Alcotest.(check bool) "poke detected" false
    (Snapshot.verify m2 ~expected_root:s.Snapshot.root)

let test_snapshot_empty_chain () =
  Alcotest.check_raises "empty" (Invalid_argument "Snapshot.materialize: empty chain")
    (fun () -> ignore (Snapshot.materialize ~mem_words:64 ~image:[||] []))

let prop_event_roundtrip =
  let open QCheck2.Gen in
  let gen =
    oneof
      [
        map3
          (fun port value msg -> Event.Io_in { port; value; msg })
          (int_range 0 0xffff) (int_range 0 0xffffffff) (int_range (-1) 1000);
        map3
          (fun icount pc branches ->
            Event.Irq { landmark = { Landmark.icount; pc; branches }; line = icount mod 4 })
          (int_range 0 1_000_000) (int_range 0 0xffff) (int_range 0 100_000);
      ]
  in
  qtest "event: wire roundtrip" gen (fun ev -> Event.equal (Event.decode (Event.encode ev)) ev)

(* --- Partial state (paper §4.4 / §7.3) ------------------------------------- *)

let test_partial_state_verify () =
  let m = Machine.create ~mem_words:4096 (image counting_prog) in
  ignore (Machine.run m Machine.null_backend ~fuel:100);
  let tree = Snapshot.merkle_of_machine m in
  let root = Avm_crypto.Merkle.root tree in
  let partial = Partial_state.extract m ~pages:[ 0; 3; 15 ] in
  Alcotest.(check int) "three pages" 3 (List.length partial.Partial_state.pages);
  Alcotest.(check bool) "verifies" true (Partial_state.verify partial ~expected_root:root);
  (* tampering a disclosed page is caught *)
  (match partial.Partial_state.pages with
  | p :: rest ->
    let bad = { p with Partial_state.data = String.map (fun _ -> 'z') p.Partial_state.data } in
    Alcotest.(check bool) "tampered page" false
      (Partial_state.verify { partial with Partial_state.pages = bad :: rest }
         ~expected_root:root)
  | [] -> Alcotest.fail "no pages");
  (* far smaller than the full state *)
  Alcotest.(check bool) "discloses less" true
    (Partial_state.disclosed_bytes partial < 4096 * 4 / 2);
  (* serialization round trip *)
  let partial2 = Partial_state.decode (Partial_state.encode partial) in
  Alcotest.(check bool) "roundtrip verifies" true
    (Partial_state.verify partial2 ~expected_root:root)

let test_partial_state_bad_indices_ignored () =
  let m = Machine.create ~mem_words:1024 (image counting_prog) in
  let partial = Partial_state.extract m ~pages:[ -1; 0; 0; 9999 ] in
  Alcotest.(check int) "deduped and clamped" 1 (List.length partial.Partial_state.pages)

let () =
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "32-bit masking" `Quick test_memory_mask32;
          Alcotest.test_case "dirty tracking" `Quick test_memory_dirty_tracking;
          Alcotest.test_case "page data roundtrip" `Quick test_memory_page_data_roundtrip;
          Alcotest.test_case "copy independence" `Quick test_memory_copy_independent;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "alu wraparound" `Quick test_alu_wrap;
          Alcotest.test_case "signed ops" `Quick test_signed_ops;
          Alcotest.test_case "shift masking" `Quick test_shift_by_register_masked;
          Alcotest.test_case "branch counter" `Quick test_branch_counter;
          Alcotest.test_case "landmark fields" `Quick test_landmark_fields;
          Alcotest.test_case "call/return" `Quick test_call_return;
          Alcotest.test_case "bad opcode faults" `Quick test_runtime_fault_bad_opcode;
          Alcotest.test_case "wild store faults" `Quick test_runtime_fault_wild_store;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "gating" `Quick test_interrupt_gating;
          Alcotest.test_case "delivery and iret" `Quick test_interrupt_flow;
        ] );
      ( "devices",
        [
          Alcotest.test_case "disk readback" `Quick test_disk_readback;
          Alcotest.test_case "tx buffer flush" `Quick test_tx_buffer_flush;
          Alcotest.test_case "frames and console" `Quick test_frames_and_console;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical runs" `Quick test_determinism_same_backend;
          Alcotest.test_case "meta roundtrip" `Quick test_meta_roundtrip;
          Alcotest.test_case "meta garbage" `Quick test_meta_garbage;
          prop_event_roundtrip;
        ] );
      ( "partial-state",
        [
          Alcotest.test_case "extract/verify/tamper" `Quick test_partial_state_verify;
          Alcotest.test_case "bad indices" `Quick test_partial_state_bad_indices_ignored;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "incremental materialize" `Quick test_snapshot_incremental_materialize;
          Alcotest.test_case "incremental smaller" `Quick test_snapshot_incremental_smaller;
          Alcotest.test_case "encode/decode" `Quick test_snapshot_encode_decode;
          Alcotest.test_case "digest detects poke" `Quick test_snapshot_digest_detects_poke;
          Alcotest.test_case "empty chain" `Quick test_snapshot_empty_chain;
        ] );
    ]
