open Avm_compress

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Bitio -------------------------------------------------------------- *)

let test_bitio_single_bits () =
  let w = Bitio.writer () in
  List.iter (Bitio.put_bit w) [ 1; 0; 1; 1; 0; 0; 0; 1; 1 ];
  Alcotest.(check int) "bit count" 9 (Bitio.bit_length w);
  let r = Bitio.reader (Bitio.contents w) in
  List.iter
    (fun b -> Alcotest.(check int) "bit" b (Bitio.get_bit r))
    [ 1; 0; 1; 1; 0; 0; 0; 1; 1 ]

let test_bitio_out_of_bits () =
  let r = Bitio.reader "" in
  Alcotest.check_raises "empty" Bitio.Out_of_bits (fun () -> ignore (Bitio.get_bit r))

let test_bitio_put_bits_range () =
  let w = Bitio.writer () in
  Alcotest.check_raises "too wide" (Invalid_argument "Bitio.put_bits") (fun () ->
      Bitio.put_bits w ~value:0 ~count:60)

let prop_bitio_roundtrip =
  qtest "bitio: put_bits/get_bits roundtrip"
    QCheck2.Gen.(list_size (int_range 0 50) (pair (int_range 0 0xffff) (int_range 1 16)))
    (fun fields ->
      let fields = List.map (fun (v, c) -> (v land ((1 lsl c) - 1), c)) fields in
      let w = Bitio.writer () in
      List.iter (fun (value, count) -> Bitio.put_bits w ~value ~count) fields;
      let r = Bitio.reader (Bitio.contents w) in
      List.for_all (fun (v, c) -> Bitio.get_bits r c = v) fields)

(* --- Huffman -------------------------------------------------------------- *)

let roundtrip_symbols freqs symbols =
  let code = Huffman.of_frequencies freqs in
  let enc = Huffman.encoder code in
  let w = Bitio.writer () in
  List.iter (Huffman.encode enc w) symbols;
  let dec = Huffman.decoder code in
  let r = Bitio.reader (Bitio.contents w) in
  List.for_all (fun s -> Huffman.decode dec r = s) symbols

let test_huffman_single_symbol () =
  let freqs = Array.make 10 0 in
  freqs.(3) <- 100;
  Alcotest.(check bool) "single" true (roundtrip_symbols freqs [ 3; 3; 3; 3 ])

let test_huffman_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Huffman.of_frequencies: empty") (fun () ->
      ignore (Huffman.of_frequencies (Array.make 5 0)))

let test_huffman_absent_symbol () =
  let freqs = Array.make 4 0 in
  freqs.(0) <- 1;
  let enc = Huffman.encoder (Huffman.of_frequencies freqs) in
  let w = Bitio.writer () in
  Alcotest.check_raises "no code" (Invalid_argument "Huffman.encode: symbol has no code")
    (fun () -> Huffman.encode enc w 2)

let test_huffman_skewed_is_short () =
  (* A very frequent symbol must get a short code. *)
  let freqs = Array.make 8 1 in
  freqs.(0) <- 10000;
  let code = Huffman.of_frequencies freqs in
  let enc = Huffman.encoder code in
  let w = Bitio.writer () in
  Huffman.encode enc w 0;
  Alcotest.(check bool) "short code" true (Bitio.bit_length w <= 2)

let test_huffman_lengths_table_roundtrip () =
  let freqs = [| 5; 0; 9; 1; 0; 44; 2; 7 |] in
  let code = Huffman.of_frequencies freqs in
  let w = Bitio.writer () in
  Huffman.write_lengths code w;
  let r = Bitio.reader (Bitio.contents w) in
  let code' = Huffman.read_lengths ~symbols:8 r in
  Alcotest.(check (array int)) "lengths" code.Huffman.lengths code'.Huffman.lengths

let prop_huffman_roundtrip =
  qtest ~count:100 "huffman: random frequency tables roundtrip"
    QCheck2.Gen.(
      pair
        (array_size (int_range 2 40) (int_range 0 1000))
        (list_size (int_range 0 200) (int_range 0 1000000)))
    (fun (freqs, picks) ->
      let present = ref [] in
      Array.iteri (fun i f -> if f > 0 then present := i :: !present) freqs;
      match !present with
      | [] -> true (* nothing to encode *)
      | present_syms ->
        let syms = Array.of_list present_syms in
        let symbols = List.map (fun p -> syms.(p mod Array.length syms)) picks in
        roundtrip_symbols freqs symbols)

let test_huffman_kraft () =
  (* Code lengths must satisfy the Kraft inequality (a real prefix code). *)
  let freqs = Array.init 300 (fun i -> (i * 7 mod 83) + if i mod 9 = 0 then 500 else 0) in
  let code = Huffman.of_frequencies freqs in
  let kraft =
    Array.fold_left
      (fun acc l -> if l > 0 then acc +. (1.0 /. float_of_int (1 lsl l)) else acc)
      0.0 code.Huffman.lengths
  in
  Alcotest.(check bool) "kraft <= 1" true (kraft <= 1.0 +. 1e-9)

(* --- LZSS ------------------------------------------------------------------- *)

let test_lzss_roundtrip_basic () =
  List.iter
    (fun s ->
      Alcotest.(check string) "roundtrip" s (Lzss.untokenize (Lzss.tokenize s)))
    [
      "";
      "a";
      "abcabcabcabc";
      String.make 10000 'z';
      "the quick brown fox jumps over the lazy dog and the quick brown fox again";
    ]

let test_lzss_finds_matches () =
  let input = String.concat "" (List.init 50 (fun _ -> "hello world! ")) in
  let tokens = Lzss.tokenize input in
  let matched_bytes =
    List.fold_left
      (fun acc -> function Lzss.Match { length; _ } -> acc + length | Lzss.Literal _ -> acc)
      0 tokens
  in
  (* Nearly everything after the first occurrence should be covered by
     back-references. *)
  Alcotest.(check bool) "high match coverage" true
    (matched_bytes * 10 > String.length input * 9)

let test_lzss_overlapping_match () =
  (* RLE-style overlap: distance < length. *)
  let s = "ab" ^ String.make 500 'x' in
  Alcotest.(check string) "overlap" s (Lzss.untokenize (Lzss.tokenize s))

let test_lzss_bad_reference () =
  Alcotest.check_raises "before start" (Invalid_argument "Lzss.untokenize: reference before start")
    (fun () -> ignore (Lzss.untokenize [ Lzss.Match { distance = 5; length = 3 } ]))

let prop_lzss_roundtrip =
  qtest ~count:150 "lzss: roundtrip on random bytes" QCheck2.Gen.string (fun s ->
      String.equal (Lzss.untokenize (Lzss.tokenize s)) s)

let prop_lzss_roundtrip_repetitive =
  qtest ~count:80 "lzss: roundtrip on repetitive data"
    QCheck2.Gen.(pair (string_size (int_range 1 20)) (int_range 1 100))
    (fun (unit_, reps) ->
      let s = String.concat "" (List.init reps (fun _ -> unit_)) in
      String.equal (Lzss.untokenize (Lzss.tokenize s)) s)

let prop_lzss_token_bounds =
  qtest ~count:80 "lzss: token fields within spec" QCheck2.Gen.string (fun s ->
      List.for_all
        (function
          | Lzss.Literal _ -> true
          | Lzss.Match { distance; length } ->
            distance >= 1 && distance <= Lzss.window_size && length >= Lzss.min_match
            && length <= Lzss.max_match)
        (Lzss.tokenize s))

(* --- Codec ---------------------------------------------------------------------- *)

let prop_codec_roundtrip =
  qtest ~count:150 "codec: roundtrip on random bytes" QCheck2.Gen.string (fun s ->
      String.equal (Codec.decompress (Codec.compress s)) s)

let test_codec_known_cases () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Codec.decompress (Codec.compress s)))
    [ ""; "x"; String.make 100000 'q'; "ababababababab" ]

let test_codec_compresses_logs () =
  let buf = Buffer.create 0 in
  for i = 0 to 5000 do
    Buffer.add_string buf (Printf.sprintf "entry %d type=TIME value=%d\n" i (i mod 97))
  done;
  Alcotest.(check bool) "ratio > 3" true (Codec.ratio (Buffer.contents buf) > 3.0)

let test_codec_corrupt_inputs () =
  let check_corrupt name s =
    Alcotest.(check bool) name true
      (match Codec.decompress s with
      | _ -> false
      | exception Codec.Corrupt _ -> true)
  in
  check_corrupt "empty" "";
  check_corrupt "bad magic" "NOTAVMZxxxxxxxxx";
  let good = Codec.compress "hello hello hello hello" in
  check_corrupt "truncated" (String.sub good 0 (String.length good - 3));
  let flipped = Bytes.of_string good in
  Bytes.set flipped (String.length good - 1) '\xff';
  (* Flipping tail bits may corrupt the stream; must never crash or
     return wrong data silently for this input. *)
  (match Codec.decompress (Bytes.to_string flipped) with
  | s -> Alcotest.(check bool) "flip detected or harmless" true (String.length s >= 0)
  | exception Codec.Corrupt _ -> ())

let test_codec_ratio_empty () = Alcotest.(check (float 0.001)) "empty" 1.0 (Codec.ratio "")

let () =
  Alcotest.run "compress"
    [
      ( "bitio",
        [
          Alcotest.test_case "single bits" `Quick test_bitio_single_bits;
          Alcotest.test_case "out of bits" `Quick test_bitio_out_of_bits;
          Alcotest.test_case "put_bits range" `Quick test_bitio_put_bits_range;
          prop_bitio_roundtrip;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "empty rejected" `Quick test_huffman_empty_rejected;
          Alcotest.test_case "absent symbol" `Quick test_huffman_absent_symbol;
          Alcotest.test_case "frequent symbol gets short code" `Quick test_huffman_skewed_is_short;
          Alcotest.test_case "length table roundtrip" `Quick test_huffman_lengths_table_roundtrip;
          Alcotest.test_case "kraft inequality" `Quick test_huffman_kraft;
          prop_huffman_roundtrip;
        ] );
      ( "lzss",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_lzss_roundtrip_basic;
          Alcotest.test_case "finds matches" `Quick test_lzss_finds_matches;
          Alcotest.test_case "overlapping match" `Quick test_lzss_overlapping_match;
          Alcotest.test_case "bad reference" `Quick test_lzss_bad_reference;
          prop_lzss_roundtrip;
          prop_lzss_roundtrip_repetitive;
          prop_lzss_token_bounds;
        ] );
      ( "codec",
        [
          Alcotest.test_case "known cases" `Quick test_codec_known_cases;
          Alcotest.test_case "compresses log-like data" `Quick test_codec_compresses_logs;
          Alcotest.test_case "corrupt inputs rejected" `Quick test_codec_corrupt_inputs;
          Alcotest.test_case "ratio of empty" `Quick test_codec_ratio_empty;
          prop_codec_roundtrip;
        ] );
    ]
