(* Replay-time analysis (paper §7.5) and secure local input (§7.2). *)

open Avm_analysis
module Machine = Avm_machine.Machine
module Isa = Avm_isa.Isa

let compile src = (Avm_mlang.Compile.compile ~stack_top:4096 src).Avm_isa.Asm.words

let run_with_backend ?(fuel = 500_000) image backend attachments =
  let m = Machine.create ~mem_words:4096 image in
  List.iter (fun f -> f m) attachments;
  ignore (Machine.run m backend ~fuel);
  m

(* Backend serving scripted NET_RX words. *)
let rx_backend words =
  let remaining = ref words in
  {
    Machine.null_backend with
    io_in =
      (fun port ->
        if port = Isa.port_net_rx then begin
          match !remaining with
          | [] -> 0
          | w :: rest ->
            remaining := rest;
            w
        end
        else if port = Isa.port_net_rx_avail then List.length !remaining
        else 0);
  }

(* --- Taint ----------------------------------------------------------------- *)

let test_taint_propagation () =
  (* network word -> arithmetic -> memory -> back to a register *)
  let src =
    {|
global cell;
fn main() {
  var v = in(NET_RX);     // tainted
  var w = v * 2 + 1;      // still tainted
  cell = w;               // memory tainted
  var c = cell;           // reload: tainted
  var k = 5;              // clean
  c = c + k;
  halt();
}
|}
  in
  let t = Taint.create () in
  let m = run_with_backend (compile src) (rx_backend [ 42 ]) [ Taint.attach t ] in
  ignore m;
  Alcotest.(check bool) "memory tainted" true (Taint.tainted_words t > 0);
  Alcotest.(check (list Alcotest.reject)) "no findings (benign flow)" [] (Taint.findings t)

let test_taint_clean_overwrite () =
  let src =
    {|
global cell;
fn main() {
  cell = in(NET_RX);  // taint it
  cell = 7;           // constant overwrite clears it
  halt();
}
|}
  in
  let t = Taint.create () in
  ignore (run_with_backend (compile src) (rx_backend [ 1 ]) [ Taint.attach t ]);
  Alcotest.(check int) "taint cleared" 0 (Taint.tainted_words t)

let test_taint_control_flow_hijack () =
  (* Jump through a register loaded from the network: the §7.5
     buffer-overflow-detection analogue. *)
  let asm = {|
      in r1, NET_RX
      jr r1
  target:
      halt
  |} in
  let image = (Avm_isa.Asm.assemble asm).Avm_isa.Asm.words in
  let t = Taint.create () in
  (try ignore (run_with_backend ~fuel:100 image (rx_backend [ 2 ]) [ Taint.attach t ])
   with Machine.Runtime_fault _ -> ());
  match Taint.findings t with
  | [ { kind = `Hijacked_control_flow; _ } ] -> ()
  | fs -> Alcotest.failf "expected one hijack finding, got %d" (List.length fs)

let test_taint_code_injection () =
  (* Write a network word into the instruction stream ahead, then run
     into it. *)
  let asm = {|
      in r1, NET_RX
      la r2, hole
      store r1, r2, 0
  hole:
      nop
      halt
  |} in
  let image = (Avm_isa.Asm.assemble asm).Avm_isa.Asm.words in
  let t = Taint.create () in
  (* The injected word is a valid NOP encoding so execution continues. *)
  (try
     ignore
       (run_with_backend ~fuel:100 image
          (rx_backend [ Isa.encode Isa.Nop ])
          [ Taint.attach t ])
   with Machine.Runtime_fault _ -> ());
  Alcotest.(check bool) "code injection flagged" true
    (List.exists
       (fun (f : Taint.finding) -> f.Taint.kind = `Tainted_code_executed)
       (Taint.findings t))

let test_taint_sink_policy () =
  let src =
    {|
fn main() {
  var v = in(NET_RX);
  out(DISK_SECTOR, 0);
  out(DISK_WORD, 0);
  out(DISK_WRITE, v);   // tainted word persisted
  out(CONSOLE, 9);      // clean word to console
  halt();
}
|}
  in
  let t = Taint.create ~sink_ports:[ Isa.port_disk_write ] () in
  ignore (run_with_backend (compile src) (rx_backend [ 5 ]) [ Taint.attach t ]);
  (match Taint.findings t with
  | [ { kind = `Tainted_sink p; _ } ] ->
    Alcotest.(check int) "sink port" Isa.port_disk_write p
  | fs -> Alcotest.failf "expected one sink finding, got %d" (List.length fs));
  Alcotest.(check bool) "registers report" true (List.length (Taint.tainted_registers t) >= 0)

let test_taint_input_source_optional () =
  let src = {|
fn main() {
  var v = in(INPUT);
  out(NET_TX, v);
  out(NET_TX_SEND, 0);
  halt();
}
|} in
  let image = compile src in
  let backend =
    { Machine.null_backend with io_in = (fun p -> if p = Isa.port_input then 9 else 0) }
  in
  let without = Taint.create ~sink_ports:[ Isa.port_net_tx ] () in
  ignore (run_with_backend image backend [ Taint.attach without ]);
  Alcotest.(check int) "input untainted by default" 0 (List.length (Taint.findings without));
  let with_ = Taint.create ~taint_input:true ~sink_ports:[ Isa.port_net_tx ] () in
  ignore (run_with_backend image backend [ Taint.attach with_ ]);
  Alcotest.(check int) "input tainted when enabled" 1 (List.length (Taint.findings with_))

(* --- Profile ----------------------------------------------------------------- *)

let test_profile_counts () =
  let src = {|
fn main() {
  var i = 0;
  while (i < 100) { i = i + 1; }
  halt();
}
|} in
  let p = Profile.create () in
  ignore (run_with_backend (compile src) Machine.null_backend [ Profile.attach p ]);
  Alcotest.(check bool) "instructions counted" true (Profile.instructions p > 500);
  Alcotest.(check bool) "branches counted" true (Profile.branch_count p >= 100);
  Alcotest.(check bool) "coverage sane" true
    (Profile.distinct_pcs p > 10 && Profile.distinct_pcs p <= Profile.instructions p);
  let hist = Profile.opcode_histogram p in
  Alcotest.(check bool) "histogram descending" true
    (match hist with (_, a) :: (_, b) :: _ -> a >= b | _ -> false);
  let hot = Profile.hottest p ~n:3 in
  Alcotest.(check int) "top-3" 3 (List.length hot)

let test_profile_report_renders () =
  let image = compile "fn main() { var i = 0; while (i < 10) { i = i + 1; } halt(); }" in
  let p = Profile.create () in
  ignore (run_with_backend image Machine.null_backend [ Profile.attach p ]);
  let report = Profile.report p ~image in
  Alcotest.(check bool) "mentions hotspots" true
    (String.length report > 50 && String.index_opt report ':' <> None)

(* --- Watchpoints ---------------------------------------------------------------- *)

let test_watchpoints_history () =
  let src = {|
global counter;
fn main() {
  var i = 0;
  while (i < 5) { i = i + 1; counter = i * 10; }
  halt();
}
|} in
  let image = compile src in
  let addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 src) "g_counter" in
  let w = Watchpoints.create ~addrs:[ addr ] in
  ignore (run_with_backend image Machine.null_backend [ Watchpoints.attach w ]);
  let hits = Watchpoints.hits w in
  Alcotest.(check int) "five writes" 5 (List.length hits);
  Alcotest.(check (list int)) "values in order" [ 10; 20; 30; 40; 50 ]
    (List.map (fun h -> h.Watchpoints.value) hits);
  Alcotest.(check (option int)) "last value" (Some 50) (Watchpoints.last_value w addr);
  Alcotest.(check (option int)) "unwatched" None (Watchpoints.last_value w (addr + 1));
  (* icounts strictly increase *)
  let icounts = List.map (fun h -> h.Watchpoints.at_icount) hits in
  Alcotest.(check bool) "monotonic" true (List.sort compare icounts = icounts)

(* --- Forensics over a real recorded log -------------------------------------------- *)

let test_forensics_replay () =
  (* Record a tiny accountable session, then replay it with all three
     analyses attached. *)
  let rng = Avm_util.Rng.create 9L in
  let ca = Avm_crypto.Identity.create_ca rng ~bits:512 "ca" in
  let solo = Avm_crypto.Identity.issue ca rng ~bits:512 "solo" in
  let src = {|
global acc;
fn main() {
  var i = 0;
  while (i < 2000) {
    var t = in(CLOCK);
    acc = acc + (t & 7);
    i = i + 1;
  }
  halt();
}
|} in
  let image = compile src in
  let config = Avm_core.Config.make Avm_core.Config.Avmm_rsa768 in
  let avmm =
    Avm_core.Avmm.create ~identity:solo ~config ~image ~mem_words:4096
      ~peers:[ (0, "solo") ] ~on_send:(fun _ -> ()) ()
  in
  let t = ref 0.0 in
  while not (Avm_core.Avmm.halted avmm) do
    t := !t +. 100_000.0;
    ignore (Avm_core.Avmm.run_slice avmm ~until_us:!t)
  done;
  let log = Avm_core.Avmm.log avmm in
  let entries =
    Avm_tamperlog.Log.segment log ~from:1 ~upto:(Avm_tamperlog.Log.length log)
  in
  let acc_addr = Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 src) "g_acc" in
  let taint = Taint.create () in
  let profile = Profile.create () in
  let watch = Watchpoints.create ~addrs:[ acc_addr ] in
  let r =
    Forensics.replay ~image ~mem_words:4096 ~peers:[ (0, "solo") ] ~entries ~taint ~profile
      ~watch ()
  in
  (match r.Forensics.outcome with
  | Avm_core.Replay.Verified _ -> ()
  | o -> Alcotest.failf "forensic replay diverged: %s"
           (Format.asprintf "%a" Avm_core.Replay.pp_outcome o));
  Alcotest.(check (list Alcotest.reject)) "no taint findings" [] r.Forensics.taint_findings;
  (* Replay covers exactly the logged execution: it stops once the
     2000th clock read is reproduced, before the final store — so the
     watchpoint sees 1999 of the 2000 writes. *)
  Alcotest.(check int) "acc write history" 1999 (List.length r.Forensics.watch_hits);
  match r.Forensics.profile with
  | Some p -> Alcotest.(check bool) "profiled" true (Profile.instructions p > 10_000)
  | None -> Alcotest.fail "profile missing"

(* --- Secure input (§7.2) ------------------------------------------------------------- *)

let test_secure_input_roundtrip () =
  let rng = Avm_util.Rng.create 77L in
  let d = Avm_core.Secure_input.create_device rng () in
  let a1 = Avm_core.Secure_input.attest d 42 in
  let a2 = Avm_core.Secure_input.attest d 43 in
  Alcotest.(check bool) "verifies" true
    (Avm_core.Secure_input.verify (Avm_core.Secure_input.device_public d) a1);
  Alcotest.(check bool) "counter increments" true (a2.Avm_core.Secure_input.seq > a1.Avm_core.Secure_input.seq);
  let other = Avm_core.Secure_input.create_device rng () in
  Alcotest.(check bool) "wrong device" false
    (Avm_core.Secure_input.verify (Avm_core.Secure_input.device_public other) a1)

let test_secure_input_audit () =
  let open Avm_core.Secure_input in
  let rng = Avm_util.Rng.create 78L in
  let d = create_device rng () in
  let mk_entry seq value =
    {
      Avm_tamperlog.Entry.seq;
      content =
        Avm_tamperlog.Entry.Exec
          (Avm_machine.Event.Io_in { port = Isa.port_input; value; msg = -1 });
      hash = "";
    }
  in
  let a1 = attest d 100 and a2 = attest d 200 in
  (* genuine stream verifies; zero reads (empty queue) are skipped *)
  (match
     audit ~device_key:(device_public d)
       ~entries:[ mk_entry 1 100; mk_entry 2 0; mk_entry 3 200 ]
       ~attestations:[ a1; a2 ]
   with
  | Ok n -> Alcotest.(check int) "two verified" 2 n
  | Error e -> Alcotest.fail e);
  (* a forged event (no attestation) is caught *)
  (match
     audit ~device_key:(device_public d)
       ~entries:[ mk_entry 1 100; mk_entry 2 999 ]
       ~attestations:[ a1 ]
   with
  | Ok _ -> Alcotest.fail "forged input accepted"
  | Error _ -> ());
  (* value mismatch is caught *)
  match
    audit ~device_key:(device_public d) ~entries:[ mk_entry 1 150 ] ~attestations:[ a1 ]
  with
  | Ok _ -> Alcotest.fail "mismatched input accepted"
  | Error _ -> ()

let test_external_aimbot_caught_with_secure_input () =
  let open Avm_scenario in
  let spec =
    {
      Game_run.default_spec with
      duration_us = 6.0e6;
      rsa_bits = 512;
      config =
        Avm_core.Config.make ~snapshot_every_us:(Some 3_000_000) Avm_core.Config.Avmm_rsa768;
      cheat = Some (1, Cheats.external_aimbot);
    }
  in
  let o = Game_run.play spec in
  (* standard audit cannot see it *)
  let std = Game_run.audit_player o ~auditor:0 ~target:1 in
  Alcotest.(check bool) "standard audit blind" true (std.Avm_core.Audit.verdict = Ok ());
  (* §7.2 trusted keyboard catches it *)
  (match Game_run.audit_inputs o ~target:1 with
  | Ok _ -> Alcotest.fail "secure-input audit missed the external aimbot"
  | Error _ -> ());
  (* honest players still verify *)
  match Game_run.audit_inputs o ~target:2 with
  | Ok n -> Alcotest.(check bool) "honest events verified" true (n > 0)
  | Error e -> Alcotest.failf "honest player failed: %s" e

let () =
  Alcotest.run "analysis"
    [
      ( "taint",
        [
          Alcotest.test_case "propagation through arith and memory" `Quick test_taint_propagation;
          Alcotest.test_case "constant overwrite clears" `Quick test_taint_clean_overwrite;
          Alcotest.test_case "control-flow hijack" `Quick test_taint_control_flow_hijack;
          Alcotest.test_case "code injection" `Quick test_taint_code_injection;
          Alcotest.test_case "sink policy" `Quick test_taint_sink_policy;
          Alcotest.test_case "input source toggle" `Quick test_taint_input_source_optional;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "report renders" `Quick test_profile_report_renders;
        ] );
      ( "watchpoints", [ Alcotest.test_case "write history" `Quick test_watchpoints_history ] );
      ( "forensics",
        [ Alcotest.test_case "replay with analyses" `Quick test_forensics_replay ] );
      ( "secure-input",
        [
          Alcotest.test_case "attest/verify" `Quick test_secure_input_roundtrip;
          Alcotest.test_case "audit stream" `Quick test_secure_input_audit;
          Alcotest.test_case "catches the external aimbot" `Slow
            test_external_aimbot_caught_with_secure_input;
        ] );
    ]
