(* Record an accountable game session and write each player's recording
   (log + collected authenticators + certificates) to disk — the files
   players would exchange when auditing each other. *)

open Cmdliner
open Avm_scenario
module Faults = Avm_netsim.Faults

(* "start:stop:node" in virtual seconds, e.g. --partition 2:5:1 *)
let parse_window flag s =
  match Scanf.sscanf s "%f:%f:%d%!" (fun a b n -> (a, b, n)) with
  | a, b, n -> { Faults.from_us = a *. 1.0e6; to_us = b *. 1.0e6; node = n }
  | exception _ ->
    Printf.eprintf "--%s expects START:STOP:NODE (virtual seconds), got %S\n" flag s;
    exit 2

let faults_of ~loss ~dup ~reorder ~corrupt ~partitions ~crashes ~duration_us =
  if loss = 0.0 && dup = 0.0 && reorder = 0.0 && corrupt = 0.0 && partitions = []
     && crashes = []
  then None
  else
    Some
      (Faults.make ~drop:loss ~duplicate:dup ~reorder ~corrupt
         (* Heal the wire for the last 15% of the session: the audit's
            every-send-acked rule exempts only a short in-flight tail,
            so retransmissions of faulted sends need a clean stretch to
            converge before the log is cut — otherwise the network
            itself would frame honest players. *)
         ~until_us:(0.85 *. duration_us)
         ~partitions:(List.map (parse_window "partition") partitions)
         ~crashes:(List.map (parse_window "crash") crashes)
         ())

let run players seconds cheat_name cheater outdir seed metrics_out faults =
  (match Sys.is_directory outdir with
  | true -> ()
  | false ->
    prerr_endline (outdir ^ " exists and is not a directory");
    exit 2
  | exception Sys_error _ -> Unix.mkdir outdir 0o755);
  let cheat =
    match cheat_name with
    | None -> None
    | Some name -> (
      match Cheats.find name with
      | c -> Some (cheater, c)
      | exception Not_found ->
        Printf.eprintf "unknown cheat %S; see avm_run --list-cheats\n" name;
        exit 2)
  in
  let spec =
    {
      Game_run.players;
      duration_us = float_of_int seconds *. 1.0e6;
      config =
        (match faults with
        | None ->
          Avm_core.Config.make ~snapshot_every_us:(Some 10_000_000) Avm_core.Config.Avmm_rsa768
        | Some _ ->
          (* Under faults, retransmit aggressively enough that every
             pending envelope gets a clean round trip inside the healed
             tail (worst wait after heal = the backoff cap). *)
          Avm_core.Config.make ~snapshot_every_us:(Some 10_000_000) ~retrans_base_us:60_000.0
            ~retrans_cap_us:500_000.0 Avm_core.Config.Avmm_rsa768);
      cheat;
      frame_cap = false;
      seed = Int64.of_int seed;
      rsa_bits = 768;
      faults;
    }
  in
  Printf.printf "recording %d players for %ds of game time%s...\n%!" players seconds
    (match cheat with
    | Some (i, c) -> Printf.sprintf " (player%d running %s)" i c.Cheats.name
    | None -> "");
  let o = Game_run.play spec in
  for i = 0 to players - 1 do
    let rec_ = Recording.of_game_node o i in
    let path = Filename.concat outdir (Printf.sprintf "%s.avmrec" rec_.Recording.node) in
    Recording.save ~path rec_;
    Printf.printf "  %s: %d log entries, %d authenticators, %.0f fps -> %s\n%!"
      rec_.Recording.node
      (List.length rec_.Recording.entries)
      (List.length rec_.Recording.auths)
      o.Game_run.fps.(i) path
  done;
  (match faults with
  | None -> ()
  | Some f ->
    Printf.printf "network faults active (%s): %d retransmissions, %d gave up\n%!"
      (Format.asprintf "%a" Faults.pp f)
      (Avm_netsim.Net.retransmissions o.Game_run.net)
      (Array.fold_left
         (fun acc n -> acc + Avm_core.Avmm.retransmissions_gaveup (Avm_netsim.Net.node_avmm n))
         0
         (Avm_netsim.Net.nodes o.Game_run.net)));
  (match metrics_out with
  | None -> ()
  | Some path ->
    Avm_obs.Report.write_file path;
    Printf.printf "metrics written to %s\n" path);
  print_endline "done; audit any file with: avm_audit <file>"

let list_cheats () =
  List.iter
    (fun (c : Cheats.t) ->
      Printf.printf "%-22s %s %s\n" c.Cheats.name
        (if c.Cheats.class2 then "[any-impl]" else "[this-impl]")
        c.Cheats.description)
    Cheats.catalog

let players_arg =
  Arg.(value & opt int 3 & info [ "players" ] ~docv:"N" ~doc:"Number of players (node 0 hosts).")

let seconds_arg =
  Arg.(value & opt int 30 & info [ "seconds" ] ~docv:"S" ~doc:"Game duration in virtual seconds.")

let cheat_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cheat" ] ~docv:"NAME" ~doc:"Install a catalog cheat (see $(b,--list-cheats)).")

let cheater_arg =
  Arg.(value & opt int 1 & info [ "cheater" ] ~docv:"I" ~doc:"Which player cheats.")

let outdir_arg =
  Arg.(value & opt string "recordings" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"World seed.")
let list_arg = Arg.(value & flag & info [ "list-cheats" ] ~doc:"List the cheat catalog and exit.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the observability snapshot (counters, gauges, histograms, trace spans) \
           as JSON to $(docv) after the session.")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P" ~doc:"Drop each transmission with probability $(docv).")

let dup_arg =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P" ~doc:"Duplicate each delivery with probability $(docv).")

let reorder_arg =
  Arg.(
    value & opt float 0.0
    & info [ "reorder" ] ~docv:"P"
        ~doc:"Add reordering latency jitter to each delivery with probability $(docv).")

let corrupt_arg =
  Arg.(
    value & opt float 0.0
    & info [ "corrupt" ] ~docv:"P"
        ~doc:"Flip a payload byte of each delivery with probability $(docv).")

let partition_arg =
  Arg.(
    value & opt_all string []
    & info [ "partition" ] ~docv:"S:E:N"
        ~doc:
          "Partition node $(i,N) from the network between virtual seconds $(i,S) and \
           $(i,E). Repeatable.")

let crash_arg =
  Arg.(
    value & opt_all string []
    & info [ "crash" ] ~docv:"S:E:N"
        ~doc:
          "Crash node $(i,N) (fail-stop freeze + partition) between virtual seconds \
           $(i,S) and $(i,E), restarting at $(i,E). Repeatable.")

let cmd =
  let doc = "record an accountable multiplayer game session" in
  let term =
    Term.(
      const (fun list players seconds cheat cheater outdir seed metrics loss dup reorder
                 corrupt partitions crashes ->
          if list then list_cheats ()
          else
            run players seconds cheat cheater outdir seed metrics
              (faults_of ~loss ~dup ~reorder ~corrupt ~partitions ~crashes
                 ~duration_us:(float_of_int seconds *. 1.0e6)))
      $ list_arg $ players_arg $ seconds_arg $ cheat_arg $ cheater_arg $ outdir_arg
      $ seed_arg $ metrics_arg $ loss_arg $ dup_arg $ reorder_arg $ corrupt_arg
      $ partition_arg $ crash_arg)
  in
  Cmd.v (Cmd.info "avm_run" ~doc) term

let () = exit (Cmd.eval cmd)
