(* Auditor-as-a-service smoke: stream N concurrent live sessions into
   one Avm_service.Daemon with a bounded lag target, a cheating
   minority poked (or log-rewritten) mid-session, and assert the
   service invariants — every planted cheat detected before its
   session closes, zero false flags, p99 audit lag within the bound,
   and a verdict vector invariant across pump parallelism. Exits
   nonzero on any violation, so `make service-smoke` can gate `make
   verify` on it. *)

module Service_run = Avm_scenario.Service_run
module Audit_ctx = Avm_core.Audit_ctx

let usage =
  "avm_auditord [--sessions N] [--epochs E] [--max-lag L] [--budget I] [--cheat-frac F]\n\
  \             [--seed S] [--jobs J] [--check-jobs J2] [--metrics FILE] [--quiet]"

let () =
  let sessions = ref 200 in
  let epochs = ref 3 in
  let max_lag = ref 4096 in
  let budget = ref 5_000_000 in
  let cheat_frac = ref 0.05 in
  let seed = ref 11 in
  let jobs = ref 1 in
  let check_jobs = ref 0 in
  let metrics = ref "" in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--sessions" :: v :: rest ->
      sessions := int_of_string v;
      parse rest
    | "--epochs" :: v :: rest ->
      epochs := int_of_string v;
      parse rest
    | "--max-lag" :: v :: rest ->
      max_lag := int_of_string v;
      parse rest
    | "--budget" :: v :: rest ->
      budget := int_of_string v;
      parse rest
    | "--cheat-frac" :: v :: rest ->
      cheat_frac := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      parse rest
    | "--check-jobs" :: v :: rest ->
      check_jobs := int_of_string v;
      parse rest
    | "--metrics" :: v :: rest ->
      metrics := v;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | a :: _ ->
      prerr_endline ("avm_auditord: unknown argument " ^ a);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let spec =
    {
      Service_run.default_spec with
      Service_run.sessions = !sessions;
      epochs = !epochs;
      max_lag = !max_lag;
      budget = !budget;
      cheat_frac = !cheat_frac;
      seed = Int64.of_int !seed;
    }
  in
  let say fmt = Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt in
  let par j = if j > 1 then Audit_ctx.parallel j else Audit_ctx.sequential in
  let o = Service_run.run ~par:(par !jobs) spec in
  let s = Service_run.signature o in
  say "service: %d sessions, %d epochs, lag bound %d, seed %d" !sessions !epochs !max_lag
    !seed;
  say "  ingested %d entries, sim events %d, drain rounds %d" o.Service_run.entries_ingested
    o.Service_run.sim_events o.Service_run.drain_rounds;
  say "  cheats %d (detected %d, missed %d, false %d)"
    (List.length o.Service_run.cheats)
    (List.length o.Service_run.detected)
    (List.length o.Service_run.missed)
    (List.length o.Service_run.false_flagged);
  say "  lag entries: p50 %d, p99 %d, max %d (bound %d)" o.Service_run.lag_p50
    o.Service_run.lag_p99 o.Service_run.lag_max !max_lag;
  say "  backpressure: engaged %d, refusals %d" o.Service_run.backpressure_engaged
    o.Service_run.backpressure_refusals;
  say "  cache: %d hits, %d misses, %d instructions saved" o.Service_run.cache_hits
    o.Service_run.cache.Avm_core.Replay_cache.misses
    o.Service_run.cache.Avm_core.Replay_cache.instructions_saved;
  List.iter
    (fun (id, us) -> say "  detected %s %.0f virtual us after injection" id us)
    o.Service_run.detection_latency_us;
  say "  verdict signature: %s" s;
  let fail = ref false in
  let check cond fmt =
    Printf.ksprintf
      (fun msg ->
        if not cond then begin
          prerr_endline ("avm_auditord: FAIL: " ^ msg);
          fail := true
        end)
      fmt
  in
  check (o.Service_run.missed = []) "%d cheats went undetected"
    (List.length o.Service_run.missed);
  check
    (o.Service_run.false_flagged = [])
    "%d honest sessions were flagged"
    (List.length o.Service_run.false_flagged);
  check
    (o.Service_run.lag_p99 <= !max_lag)
    "p99 audit lag %d exceeds bound %d" o.Service_run.lag_p99 !max_lag;
  if !check_jobs > 0 then begin
    let o2 = Service_run.run ~par:(par !check_jobs) spec in
    let s2 = Service_run.signature o2 in
    say "  verdict signature at jobs %d: %s" !check_jobs s2;
    check (s = s2) "verdict vector differs between pump jobs %d and %d" !jobs !check_jobs
  end;
  if !metrics <> "" then begin
    Avm_obs.Report.write_file !metrics;
    say "  metrics written to %s" !metrics
  end;
  if !fail then exit 1;
  say "service smoke OK"
