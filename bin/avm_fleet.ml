(* Fleet-scale witness-audit smoke: N nodes, E epochs, and the two
   invariants the harness must never lose — every node is audited every
   epoch, and the verdict vector is identical no matter how many
   auditor workers run it. Exits nonzero on any violation, so `make
   fleet-smoke` can gate `make verify` on it. *)

module Fleet_run = Avm_scenario.Fleet_run
module Audit_ctx = Avm_core.Audit_ctx

let usage = "avm_fleet [--nodes N] [--epochs E] [--witnesses K] [--seed S] [--quiet]"

let () =
  let nodes = ref 200 in
  let epochs = ref 3 in
  let witnesses = ref 3 in
  let seed = ref 7 in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--nodes" :: v :: rest ->
      nodes := int_of_string v;
      parse rest
    | "--epochs" :: v :: rest ->
      epochs := int_of_string v;
      parse rest
    | "--witnesses" :: v :: rest ->
      witnesses := int_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | a :: _ ->
      prerr_endline ("avm_fleet: unknown argument " ^ a);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let spec =
    {
      Fleet_run.default_spec with
      Fleet_run.nodes = !nodes;
      epochs = !epochs;
      witnesses = !witnesses;
      seed = Int64.of_int !seed;
    }
  in
  let say fmt = Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt in
  let o1 = Fleet_run.run ~par:Audit_ctx.sequential spec in
  let o4 = Fleet_run.run ~par:(Audit_ctx.parallel 4) spec in
  let s1 = Fleet_run.signature o1 and s4 = Fleet_run.signature o4 in
  say "fleet: %d nodes, %d epochs, k=%d, seed %d" !nodes !epochs !witnesses !seed;
  say "  sim events %d, audit jobs %d, cheats %d (detected %d, missed %d, false %d)"
    o1.Fleet_run.sim_events o1.Fleet_run.audit_jobs
    (List.length o1.Fleet_run.cheats)
    (List.length o1.Fleet_run.detected)
    (List.length o1.Fleet_run.missed)
    (List.length o1.Fleet_run.false_flagged);
  List.iter
    (fun (r : Fleet_run.epoch_report) ->
      say "  epoch %d: coverage %.3f, %d jobs, %d failing verdicts" r.Fleet_run.epoch
        r.Fleet_run.coverage r.Fleet_run.jobs r.Fleet_run.failures)
    o1.Fleet_run.reports;
  let details = Hashtbl.create 8 in
  List.iter
    (fun (v : Avm_core.Witness.verdict) ->
      if not v.Avm_core.Witness.ok then
        let d = v.Avm_core.Witness.detail in
        Hashtbl.replace details d (1 + Option.value ~default:0 (Hashtbl.find_opt details d)))
    o1.Fleet_run.verdicts;
  Hashtbl.iter (fun d n -> say "  failing detail (%dx): %s" n d) details;
  say "  verdict signature: %s (jobs 1) / %s (jobs 4)" s1 s4;
  let fail = ref false in
  let check cond fmt =
    Printf.ksprintf
      (fun msg ->
        if not cond then begin
          prerr_endline ("avm_fleet: FAIL: " ^ msg);
          fail := true
        end)
      fmt
  in
  check (s1 = s4) "verdict vector differs between auditor jobs 1 and jobs 4";
  List.iter
    (fun (r : Fleet_run.epoch_report) ->
      check
        (r.Fleet_run.coverage = 1.0)
        "epoch %d coverage %.3f < 1.0" r.Fleet_run.epoch r.Fleet_run.coverage)
    o1.Fleet_run.reports;
  check (o1.Fleet_run.missed = []) "%d cheats went undetected" (List.length o1.Fleet_run.missed);
  check
    (o1.Fleet_run.false_flagged = [])
    "%d honest nodes were flagged" (List.length o1.Fleet_run.false_flagged);
  if !fail then exit 1;
  say "fleet smoke OK"
