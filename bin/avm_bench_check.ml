(* Validate committed BENCH_*.json files: each must parse and carry
   its required keys with sane values. Catches the class of regression
   where a bench silently emits a zero, a NaN (unparseable as JSON) or
   drops a field the README tables quote — the files are committed
   artifacts, so a malformed one otherwise survives until a human
   reads it. Run via [make bench-check]; any absent file is an error
   (the bench that writes it is part of the build). *)

module Json = Avm_obs.Json

let errors = ref 0

let fail file fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "%s: %s\n" file msg)
    fmt

(* Keys that must exist; [Num_pos] additionally demands > 0 (a rate
   or count that benched at zero means the measurement window is
   broken, which is exactly the bug this tool exists to catch);
   [Num_min x] demands >= x — a regression floor for rates the
   roadmap commits to. *)
type req = Present | Num_pos | Num_min of float

let check_file (file, reqs) =
  if not (Sys.file_exists file) then fail file "missing (run `make bench` to regenerate)"
  else
    let contents =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Json.parse contents with
    | exception _ -> fail file "does not parse as JSON"
    | json ->
      List.iter
        (fun (key, req) ->
          match Json.member key json with
          | None -> fail file "required key %S missing" key
          | Some v -> (
            match req with
            | Present -> ()
            | Num_pos -> (
              match Json.to_float_opt v with
              | Some x when x > 0.0 -> ()
              | Some x -> fail file "key %S is %g, expected > 0" key x
              | None -> fail file "key %S is not a number" key)
            | Num_min floor -> (
              match Json.to_float_opt v with
              | Some x when x >= floor -> ()
              | Some x -> fail file "key %S is %g, below the regression floor %g" key x floor
              | None -> fail file "key %S is not a number" key)))
        reqs

let () =
  let files =
    [
      ( "BENCH_audit.json",
        [
          ("entries", Num_pos);
          (* Floor from the batched-signature + derived-chain rework
             (DESIGN.md §17): 2x the previous ~83k committed rate,
             with headroom for slower CI hosts. *)
          ("syntactic_entries_per_sec", Num_min 166000.0);
          ("syntactic_rsa_verifies_per_sec", Num_pos);
          ("semantic_entries_per_sec", Num_pos);
          ("semantic_rsa_verifies_per_sec", Num_pos);
          ("parallel_jobs", Num_pos);
          ("compression_ratio", Num_pos);
          ("verdict_match", Present);
          ("net_retransmissions", Present);
        ] );
      ( "BENCH_fleet.json",
        [
          ("nodes", Num_pos);
          ("sim_events_per_sec", Num_pos);
          ("audit_jobs", Num_pos);
          ("auditor_jobs_per_sec_sequential", Num_pos);
          ("auditor_jobs_per_sec_parallel", Num_pos);
          ("dedup_enabled", Present);
          ("cache_hits", Present);
          ("cache_hit_rate", Present);
          ("cheats_planted", Num_pos);
          ("cheats_detected", Num_pos);
          ("verdict_signature", Present);
        ] );
      ( "BENCH_dedup.json",
        [
          ("nodes", Num_pos);
          ("semantic_entries", Num_pos);
          ("semantic_entries_per_sec_off", Num_pos);
          ("semantic_entries_per_sec_on", Num_pos);
          ("semantic_speedup", Num_pos);
          ("cache_hits", Num_pos);
          ("cache_hit_rate", Num_pos);
          ("dedup_path_speedup", Num_pos);
          ("cheats_planted", Num_pos);
          ("cheats_detected", Num_pos);
          ("verdict_signature", Present);
        ] );
      ( "BENCH_crypto.json",
        [
          ("rsa_bits", Present);
          ("sha256_mb_per_sec", Num_pos);
          ("rsa_verifies_per_sec", Num_pos);
          ("rsa_batch_verifies_per_sec", Num_pos);
          (* The amortized batch path must actually beat per-signature
             verification (DESIGN.md §17). *)
          ("batch_speedup", Num_min 1.5);
          ("crosscheck_ok", Present);
        ] );
      ( "BENCH_equiv.json",
        [
          ("nodes", Num_pos);
          ("witnesses_per_node", Num_pos);
          ("forkers_planted", Num_pos);
          ("forkers_detected_by_exchange", Num_pos);
          ("forkers_detected_in_fork_epoch", Num_pos);
          ("false_flags", Present);
          ("proofs", Num_pos);
          ("proofs_verified_standalone", Num_pos);
          ("exchange_messages", Num_pos);
          ("exchange_bytes", Num_pos);
          ("exchange_bytes_per_node_epoch", Num_pos);
          ("verdict_signature", Present);
        ] );
      ( "BENCH_service.json",
        [
          ("sessions", Num_pos);
          ("entries_ingested", Num_pos);
          ("entries_per_sec_ingested", Num_pos);
          ("session_epochs_per_sec", Num_pos);
          ("lag_bound_entries", Num_pos);
          ("lag_p50_entries", Present);
          ("lag_p99_entries", Present);
          ("detection_latency_p50_us", Num_pos);
          ("detection_latency_max_us", Num_pos);
          ("cheats_planted", Num_pos);
          ("cheats_detected", Num_pos);
          ("cheats_missed", Present);
          ("honest_false_flags", Present);
          ("cache_hit_rate", Present);
          ("backpressure_engaged", Present);
          ("verdict_signature", Present);
        ] );
    ]
  in
  (* Only files that exist in the repo are required to validate except
     the required list below. *)
  let required =
    [
      "BENCH_audit.json";
      "BENCH_fleet.json";
      "BENCH_dedup.json";
      "BENCH_crypto.json";
      "BENCH_service.json";
      "BENCH_equiv.json";
    ]
  in
  List.iter
    (fun (file, reqs) ->
      if List.mem file required || Sys.file_exists file then check_file (file, reqs))
    files;
  if !errors > 0 then begin
    Printf.eprintf "bench-check: %d problem(s)\n" !errors;
    exit 1
  end;
  print_endline "bench-check: all committed bench files parse with required keys"
