(* Audit a recording file: verify the hash chain against the collected
   authenticators (syntactic check), then deterministically replay the
   log against the trusted reference image (semantic check). On a
   fault, optionally write transferable evidence; evidence files can be
   re-checked by a third party with --check-evidence. *)

open Cmdliner
open Avm_scenario
module Audit = Avm_core.Audit
module Evidence = Avm_core.Evidence

let write_metrics = function
  | None -> ()
  | Some path ->
    Avm_obs.Report.write_file path;
    Printf.printf "metrics written to %s\n" path

let audit_file path evidence_out jobs metrics_out metrics_table =
  let r = Recording.load ~path in
  Printf.printf "auditing %s (%s scenario, %d entries, %d authenticators)\n%!"
    r.Recording.node
    (Recording.scenario_name r.Recording.scenario)
    (List.length r.Recording.entries)
    (List.length r.Recording.auths);
  (* Trust root: check every certificate against the CA first. *)
  List.iter
    (fun (name, cert) ->
      if not (Avm_crypto.Identity.check_certificate r.Recording.ca_public cert) then begin
        Printf.eprintf "certificate for %s does not verify against the CA\n" name;
        exit 2
      end)
    r.Recording.certificates;
  let ctx =
    Audit.ctx
      ~node_cert:(List.assoc r.Recording.node r.Recording.certificates)
      ~peer_certs:r.Recording.certificates ~auths:r.Recording.auths ()
  in
  let par = Audit.parallel jobs in
  let image = Recording.image_of_scenario r.Recording.scenario in
  (* Load into a segment store and audit it with the streaming
     pipeline; [of_entries] keeps the recorded hashes verbatim, so
     tampering in the file still reaches the auditor. A recording whose
     sequence numbers do not even form a contiguous run cannot be
     indexed as segments — audit the raw list instead, which reports
     the gap as a chain failure. *)
  let outcome =
    match Avm_tamperlog.Log.of_entries r.Recording.entries with
    | log ->
      Audit.full_of_log ~ctx ~image ~mem_words:r.Recording.mem_words
        ~peers:r.Recording.peers ~log ~par ()
    | exception Invalid_argument _ ->
      Audit.full ~ctx ~image ~mem_words:r.Recording.mem_words ~peers:r.Recording.peers
        ~prev_hash:Avm_tamperlog.Log.genesis_hash ~entries:r.Recording.entries ~par ()
  in
  Format.printf "%a@." Audit.pp_outcome outcome;
  write_metrics metrics_out;
  if metrics_table then print_string (Avm_obs.Report.table ());
  match outcome.Audit.verdict with
  | Ok () -> 0
  | Error _ ->
    (match (evidence_out, outcome.Audit.evidence) with
    | None, _ | _, None -> ()
    | Some out, Some ev ->
      let oc = open_out_bin out in
      output_string oc (Evidence.encode ev);
      close_out oc;
      Printf.printf "evidence written to %s (give it to any third party)\n" out);
    1

(* Stream the recording through the session-oriented online auditor —
   the same code path the service daemon drives — instead of the batch
   pipeline: entries are offered in slices, each slice syntactically
   checked on ingest and replayed under a budget, with backpressure
   drained by extra replay steps. *)
let audit_online path slice evidence_out metrics_out metrics_table =
  let r = Recording.load ~path in
  Printf.printf "online-auditing %s (%s scenario, %d entries, slice %d)\n%!"
    r.Recording.node
    (Recording.scenario_name r.Recording.scenario)
    (List.length r.Recording.entries)
    slice;
  List.iter
    (fun (name, cert) ->
      if not (Avm_crypto.Identity.check_certificate r.Recording.ca_public cert) then begin
        Printf.eprintf "certificate for %s does not verify against the CA\n" name;
        exit 2
      end)
    r.Recording.certificates;
  let ctx =
    Audit.ctx
      ~node_cert:(List.assoc r.Recording.node r.Recording.certificates)
      ~peer_certs:r.Recording.certificates ~auths:r.Recording.auths ()
  in
  let image = Recording.image_of_scenario r.Recording.scenario in
  let log =
    match Avm_tamperlog.Log.of_entries r.Recording.entries with
    | log -> log
    | exception Invalid_argument msg ->
      Printf.eprintf "recording cannot be streamed (%s); use the batch audit\n" msg;
      exit 2
  in
  let module Session = Avm_core.Online_audit.Session in
  let s =
    Session.open_session ~ctx ~image ~mem_words:r.Recording.mem_words ~replay_rate:1.0
      ~peers:r.Recording.peers ()
  in
  let budget = 50_000_000 in
  let len = Avm_tamperlog.Log.length log in
  let upto = ref 0 in
  while (Session.status s).Avm_core.Online_audit.verdict = None && !upto < len do
    upto := min len (!upto + slice);
    let rec offer () =
      match Session.ingest ~upto:!upto s log with
      | `Accepted -> ()
      | `Backpressure _ ->
        ignore (Session.step s ~budget_instructions:budget);
        offer ()
    in
    offer ();
    ignore (Session.step s ~budget_instructions:budget)
  done;
  while
    (Session.status s).Avm_core.Online_audit.verdict = None && Session.lag_entries s > 0
  do
    ignore (Session.step s ~budget_instructions:budget)
  done;
  let final = Session.close s in
  let st = Session.status s in
  Printf.printf "ingested %d entries, retired %d chunks, %d cache hits\n"
    st.Avm_core.Online_audit.ingested_entries st.Avm_core.Online_audit.chunks_retired
    st.Avm_core.Online_audit.cache_hits;
  write_metrics metrics_out;
  if metrics_table then print_string (Avm_obs.Report.table ());
  match final with
  | None ->
    Printf.printf "online audit: %s verified (%d instructions replayed)\n" r.Recording.node
      st.Avm_core.Online_audit.replayed_instructions;
    0
  | Some v ->
    Format.printf "online audit: FAILED — %a@." Avm_core.Online_audit.pp_verdict v;
    (match Session.outcome s with
    | Some { Audit.evidence = Some ev; _ } -> (
      Format.printf "%a@." Audit.pp_outcome (Option.get (Session.outcome s));
      match evidence_out with
      | None -> ()
      | Some out ->
        let oc = open_out_bin out in
        output_string oc (Evidence.encode ev);
        close_out oc;
        Printf.printf "evidence written to %s (give it to any third party)\n" out)
    | _ -> ());
    1

let check_evidence path recording_path =
  let ic = open_in_bin path in
  let ev = Evidence.decode (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  (* The third party needs the certificates and peer map; they travel
     in any recording of the same session. *)
  let r = Recording.load ~path:recording_path in
  Printf.printf "checking %s\n%!" (Evidence.describe ev);
  let ctx =
    Audit.ctx
      ~node_cert:(List.assoc ev.Evidence.accused r.Recording.certificates)
      ~peer_certs:r.Recording.certificates ()
  in
  let confirmed =
    Audit.check_evidence ev ~ctx
      ~image:(Recording.image_of_scenario r.Recording.scenario)
      ~mem_words:r.Recording.mem_words ~peers:r.Recording.peers ()
  in
  if confirmed then begin
    Printf.printf "CONFIRMED: %s is provably faulty\n" ev.Evidence.accused;
    0
  end
  else begin
    Printf.printf "REJECTED: the evidence does not hold up\n";
    1
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"RECORDING" ~doc:"Recording file.")

let evidence_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "evidence" ] ~docv:"OUT" ~doc:"On a fault, write transferable evidence here.")

let check_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-evidence" ] ~docv:"EVIDENCE"
        ~doc:"Act as the third party: verify an evidence file against RECORDING's session data.")

let jobs_arg =
  Arg.(
    value
    & opt int (Avm_util.Domain_pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the audit (default: the machine's recommended domain \
           count). The syntactic check fans out across sealed segments; the verdict is \
           identical to $(b,--jobs 1).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the observability snapshot (counters, gauges, histograms, trace spans) \
           as JSON to $(docv) after the audit.")

let metrics_table_arg =
  Arg.(
    value & flag
    & info [ "metrics-table" ] ~doc:"Print the metrics snapshot as an aligned text table.")

let online_arg =
  Arg.(
    value & flag
    & info [ "online" ]
        ~doc:
          "Stream the recording through the session-oriented online auditor (paper §6.11) \
           instead of the batch pipeline: slices are ingested as if the log were still \
           growing, with the same verdict.")

let slice_arg =
  Arg.(
    value
    & opt int 64
    & info [ "slice" ] ~docv:"N" ~doc:"Entries offered per $(b,--online) ingest step.")

let cmd =
  let doc = "audit an AVM recording (syntactic + semantic checks)" in
  let term =
    Term.(
      const (fun check file evidence jobs metrics table online slice ->
          match check with
          | Some ev_path -> Stdlib.exit (check_evidence ev_path file)
          | None ->
            if online then Stdlib.exit (audit_online file slice evidence metrics table)
            else Stdlib.exit (audit_file file evidence jobs metrics table))
      $ check_arg $ file_arg $ evidence_arg $ jobs_arg $ metrics_arg $ metrics_table_arg
      $ online_arg $ slice_arg)
  in
  Cmd.v (Cmd.info "avm_audit" ~doc) term

let () = Stdlib.exit (Cmd.eval cmd)
