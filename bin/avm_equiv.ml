(* Equivocation-detection smoke: plant forking nodes, run the
   cross-witness authenticator exchange, and hold the four invariants
   the mechanism lives by — every forker caught within one epoch of
   its fork, zero false flags, every proof verifies standalone, and
   the verdict-plus-proof signature is invariant under the auditor
   pool's job count. Exits nonzero on any violation, so `make
   equiv-smoke` can gate `make verify` on it. *)

module Equiv = Avm_scenario.Equivocation_run
module Audit_ctx = Avm_core.Audit_ctx

let usage =
  "avm_equiv [--nodes N] [--epochs E] [--witnesses K] [--fork-frac F] [--seed S] [--quiet]"

let () =
  let nodes = ref 60 in
  let epochs = ref 3 in
  let witnesses = ref 3 in
  let fork_frac = ref 0.05 in
  let seed = ref 11 in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--nodes" :: v :: rest ->
      nodes := int_of_string v;
      parse rest
    | "--epochs" :: v :: rest ->
      epochs := int_of_string v;
      parse rest
    | "--witnesses" :: v :: rest ->
      witnesses := int_of_string v;
      parse rest
    | "--fork-frac" :: v :: rest ->
      fork_frac := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | a :: _ ->
      prerr_endline ("avm_equiv: unknown argument " ^ a);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let spec =
    {
      Equiv.default_spec with
      Equiv.nodes = !nodes;
      epochs = !epochs;
      witnesses = !witnesses;
      fork_frac = !fork_frac;
      seed = Int64.of_int !seed;
    }
  in
  let say fmt = Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt in
  let o1 = Equiv.run ~par:Audit_ctx.sequential spec in
  let o4 = Equiv.run ~par:(Audit_ctx.parallel 4) spec in
  let s1 = Equiv.signature o1 and s4 = Equiv.signature o4 in
  say "equiv: %d nodes, %d epochs, k=%d, fork-frac %.2f, seed %d" !nodes !epochs !witnesses
    !fork_frac !seed;
  say "  forkers %d, exchange caught %d, baseline caught %d, false flags %d"
    (List.length o1.Equiv.forkers)
    (List.length o1.Equiv.exchange_detected)
    (List.length o1.Equiv.baseline_detected)
    (List.length o1.Equiv.false_flags);
  List.iter
    (fun (f : Equiv.forker) ->
      let caught = List.assoc_opt f.Equiv.node o1.Equiv.exchange_detected in
      say "  forker n%d (fork epoch %d): exchange %s, baseline %s" f.Equiv.node f.Equiv.epoch
        (match caught with Some e -> Printf.sprintf "epoch %d" e | None -> "MISSED")
        (match List.assoc_opt f.Equiv.node o1.Equiv.baseline_detected with
        | Some e -> Printf.sprintf "epoch %d" e
        | None -> "never"))
    o1.Equiv.forkers;
  say "  proofs %d (%d verify standalone), exchange %d msgs / %d auths / %d bytes"
    (List.length o1.Equiv.proofs) o1.Equiv.proofs_verified o1.Equiv.ex_messages o1.Equiv.ex_auths
    o1.Equiv.ex_bytes;
  say "  signature: %s (jobs 1) / %s (jobs 4)" s1 s4;
  let fail = ref false in
  let check cond fmt =
    Printf.ksprintf
      (fun msg ->
        if not cond then begin
          prerr_endline ("avm_equiv: FAIL: " ^ msg);
          fail := true
        end)
      fmt
  in
  check (s1 = s4) "verdict/proof signature differs between auditor jobs 1 and jobs 4";
  List.iter
    (fun (f : Equiv.forker) ->
      match List.assoc_opt f.Equiv.node o1.Equiv.exchange_detected with
      | None -> check false "forker n%d never caught by the exchange" f.Equiv.node
      | Some e ->
        check (e = f.Equiv.epoch) "forker n%d (fork epoch %d) caught only at epoch %d"
          f.Equiv.node f.Equiv.epoch e)
    o1.Equiv.forkers;
  check (o1.Equiv.false_flags = []) "%d honest nodes were accused"
    (List.length o1.Equiv.false_flags);
  check
    (o1.Equiv.proofs_verified = List.length o1.Equiv.proofs)
    "%d of %d proofs failed standalone verification"
    (List.length o1.Equiv.proofs - o1.Equiv.proofs_verified)
    (List.length o1.Equiv.proofs);
  check
    (List.length o1.Equiv.proofs = List.length o1.Equiv.forkers)
    "%d proofs for %d forkers" (List.length o1.Equiv.proofs) (List.length o1.Equiv.forkers);
  if !fail then exit 1;
  say "equiv smoke OK"
