(* Backend cross-check (DESIGN.md §17): the audit verdict must not
   depend on which crypto backend computed it. Builds a set of signed
   logs — honest and tampered in assorted ways — and runs the full
   syntactic audit under the optimized Default backend (batched
   verification engaged) and the naive from-spec Reference backend
   (one textbook primitive call per signature). Any difference between
   the two reports, byte for byte, is a bug in an optimization and
   exits nonzero. Run via [make backend-crosscheck] (part of
   [make verify]). *)

open Avm_core
open Avm_crypto
open Avm_tamperlog

let trials = ref 24
let seed = ref 4242

(* One synthetic audited session: node [bob] receives signed messages
   from [alice], interleaved with sends, acks and notes, issuing an
   authenticator per entry. Returns everything an auditor holds. *)
let build_session rng ~entries =
  let ca = Identity.create_ca rng ~bits:512 "ca" in
  let alice = Identity.issue ca rng ~bits:512 "alice" in
  let bob = Identity.issue ca rng ~bits:512 "bob" in
  let log = Log.create () in
  let auths = ref [] in
  let pending_sends = ref [] in
  let recvs = ref [] in
  for i = 1 to entries do
    let content =
      match Avm_util.Rng.int rng 10 with
      | 0 | 1 | 2 ->
        let payload = Printf.sprintf "msg %d" i in
        let signature =
          Identity.sign alice
            (Wireformat.message_body ~src:"alice" ~dest:"bob" ~nonce:i ~payload)
        in
        Entry.Recv { src = "alice"; nonce = i; payload; signature }
      | 3 | 4 ->
        pending_sends := (i, Log.length log + 1) :: !pending_sends;
        Entry.Send { dest = "alice"; nonce = i; payload = Printf.sprintf "out %d" i }
      | 5 when !pending_sends <> [] ->
        let nonce, seq = List.hd !pending_sends in
        pending_sends := List.tl !pending_sends;
        ignore nonce;
        Entry.Ack { src = "alice"; acked_seq = seq; signature = "" }
      | _ -> Entry.Note (Printf.sprintf "tick %d" i)
    in
    let prev_hash = Log.head_hash log in
    let e = Log.append log content in
    (match content with Entry.Recv _ -> recvs := e.Entry.seq :: !recvs | _ -> ());
    auths := Auth.make bob ~entry:e ~prev_hash :: !auths
  done;
  (* ack every still-pending send so an honest log audits clean *)
  List.iter
    (fun (_, seq) ->
      let prev_hash = Log.head_hash log in
      let e = Log.append log (Entry.Ack { src = "alice"; acked_seq = seq; signature = "" }) in
      auths := Auth.make bob ~entry:e ~prev_hash :: !auths)
    !pending_sends;
  let ctx =
    Audit.ctx
      ~node_cert:(Identity.certificate bob)
      ~peer_certs:[ ("alice", Identity.certificate alice); ("bob", Identity.certificate bob) ]
      ~auths:!auths ()
  in
  (log, ctx)

(* Tamper catalog: index 0 leaves the log honest. *)
let tamper rng log =
  let n = Log.length log in
  match Avm_util.Rng.int rng 5 with
  | 0 -> "honest"
  | 1 ->
    Log.tamper_replace log (1 + Avm_util.Rng.int rng n) (Entry.Note "overwritten");
    "replace"
  | 2 ->
    Log.tamper_truncate log (max 1 (n / 2));
    "truncate"
  | 3 ->
    Log.tamper_reseal log (1 + Avm_util.Rng.int rng n) (Entry.Note "resealed");
    "reseal"
  | _ ->
    (* corrupt one RECV signature without touching the chain: forces
       the deferred signature batch to pinpoint the failing index *)
    let seqs =
      List.filter
        (fun s ->
          match (Log.entry log s).Entry.content with Entry.Recv _ -> true | _ -> false)
        (List.init n (fun i -> i + 1))
    in
    (match seqs with
    | [] -> "honest"
    | _ ->
      let s = List.nth seqs (Avm_util.Rng.int rng (List.length seqs)) in
      (match (Log.entry log s).Entry.content with
      | Entry.Recv r ->
        Log.tamper_reseal log s
          (Entry.Recv { r with signature = String.map (fun c -> Char.chr (Char.code c lxor 1)) r.signature })
      | _ -> assert false);
      "forge-recv-sig")

let report_fingerprint (r : Audit.syntactic_report) =
  Printf.sprintf "checked=%d auths=%d recv_sigs=%d failures=[%s]" r.Audit.entries_checked
    r.Audit.auths_matched r.Audit.recv_signatures_verified
    (String.concat "; " r.Audit.failures)

let () =
  Arg.parse
    [
      ("--trials", Arg.Set_int trials, "N  sessions to cross-check (default 24)");
      ("--seed", Arg.Set_int seed, "N  RNG seed");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "avm_backend_check [--trials N] [--seed N]";
  let rng = Avm_util.Rng.create (Int64.of_int !seed) in
  let mismatches = ref 0 in
  let detected = ref 0 in
  for trial = 1 to !trials do
    let log, ctx = build_session rng ~entries:(40 + Avm_util.Rng.int rng 60) in
    let kind = tamper rng log in
    let entries = Log.segment log ~from:1 ~upto:(Log.length log) in
    let audit () =
      Sigcache.clear ();
      Audit.syntactic ~ctx ~prev_hash:Log.genesis_hash ~entries ()
    in
    let optimized = Crypto_backend.with_backend Crypto_backend.default audit in
    let oracle = Crypto_backend.with_backend Crypto_backend.reference audit in
    if optimized.Audit.failures <> [] then incr detected;
    if optimized <> oracle then begin
      incr mismatches;
      Printf.eprintf "MISMATCH trial %d (%s):\n  %s: %s\n  %s: %s\n" trial kind
        (let module D = (val Crypto_backend.default) in
         D.name)
        (report_fingerprint optimized)
        (let module R = (val Crypto_backend.reference) in
         R.name)
        (report_fingerprint oracle)
    end
  done;
  if !mismatches > 0 then begin
    Printf.eprintf "backend-crosscheck: %d/%d trials disagree\n" !mismatches !trials;
    exit 1
  end;
  Printf.printf
    "backend-crosscheck: %d trials, default = reference on every report (%d tampered logs flagged)\n"
    !trials !detected
