(* CI smoke checker for observability snapshots: parse a metrics JSON
   file written by avm_audit/avm_run --metrics and assert that named
   counters are nonzero and named trace spans were recorded. Exits
   nonzero with a diagnostic on the first failed assertion, so it can
   gate `make verify`. *)

open Cmdliner
module Json = Avm_obs.Json

let load path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.parse text with
  | j -> j
  | exception Json.Parse_error msg ->
    Printf.eprintf "%s: invalid JSON: %s\n" path msg;
    exit 2

let counter_value json name =
  match Json.member "counters" json with
  | Some counters -> (
    match Json.member name counters with
    | Some v -> Json.to_int_opt v
    | None -> None)
  | None -> None

let gauge_value json name =
  match Json.member "gauges" json with
  | Some gauges -> (
    match Json.member name gauges with
    | Some v -> Json.to_float_opt v
    | None -> None)
  | None -> None

let span_count json name =
  match Json.member "spans" json with
  | None -> 0
  | Some spans -> (
    match Json.to_list_opt spans with
    | None -> 0
    | Some l ->
      List.length
        (List.filter
           (fun s ->
             match Json.member "name" s with
             | Some n -> Json.to_string_opt n = Some name
             | None -> false)
           l))

let parse_bound spec =
  (* NAME:BOUND *)
  match String.rindex_opt spec ':' with
  | None -> None
  | Some i -> (
    let name = String.sub spec 0 i in
    let bound = String.sub spec (i + 1) (String.length spec - i - 1) in
    match float_of_string_opt bound with Some b -> Some (name, b) | None -> None)

let run path counters gauges gauge_maxes spans quiet =
  let json = load path in
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> incr failures; Printf.eprintf "FAIL %s\n" m) fmt in
  let ok fmt = Printf.ksprintf (fun m -> if not quiet then Printf.printf "ok   %s\n" m) fmt in
  List.iter
    (fun name ->
      match counter_value json name with
      | None -> fail "counter %s: missing from %s" name path
      | Some 0 -> fail "counter %s: present but zero" name
      | Some v -> ok "counter %s = %d" name v)
    counters;
  List.iter
    (fun name ->
      match gauge_value json name with
      | None -> fail "gauge %s: missing from %s" name path
      | Some v -> ok "gauge %s = %g" name v)
    gauges;
  List.iter
    (fun spec ->
      match parse_bound spec with
      | None -> fail "--gauge-max %s: expected NAME:BOUND" spec
      | Some (name, bound) -> (
        match gauge_value json name with
        | None -> fail "gauge %s: missing from %s" name path
        | Some v when v > bound -> fail "gauge %s = %g exceeds bound %g" name v bound
        | Some v -> ok "gauge %s = %g <= %g" name v bound))
    gauge_maxes;
  List.iter
    (fun name ->
      match span_count json name with
      | 0 -> fail "span %s: no occurrences in %s" name path
      | n -> ok "span %s: %d occurrence%s" name n (if n = 1 then "" else "s"))
    spans;
  if !failures = 0 then 0
  else begin
    Printf.eprintf "%d assertion%s failed\n" !failures (if !failures = 1 then "" else "s");
    1
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"METRICS" ~doc:"Metrics JSON file.")

let counter_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "counter" ] ~docv:"NAME" ~doc:"Assert counter $(docv) exists and is nonzero.")

let gauge_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "gauge" ] ~docv:"NAME" ~doc:"Assert gauge $(docv) is present.")

let gauge_max_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "gauge-max" ] ~docv:"NAME:BOUND"
        ~doc:"Assert gauge NAME is present and does not exceed BOUND.")

let span_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "span" ] ~docv:"NAME" ~doc:"Assert at least one trace span named $(docv).")

let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print failures.")

let cmd =
  let doc = "assert counters/gauges/spans in an observability snapshot" in
  let term =
    Term.(
      const (fun file counters gauges gauge_maxes spans quiet ->
          Stdlib.exit (run file counters gauges gauge_maxes spans quiet))
      $ file_arg $ counter_arg $ gauge_arg $ gauge_max_arg $ span_arg $ quiet_arg)
  in
  Cmd.v (Cmd.info "avm_obs_check" ~doc) term

let () = Stdlib.exit (Cmd.eval cmd)
