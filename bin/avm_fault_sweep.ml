(* The fault-vs-verdict smoke check (ISSUE 4 acceptance): sweep the
   seeded fault schedules over an honest and a cheating session and
   fail loudly if any schedule changes any auditor's verdict relative
   to the fault-free baseline. Run by `make fault-smoke`. *)

open Avm_scenario

let () =
  let players = ref 2 in
  let seconds = ref 4.0 in
  let seed = ref 21 in
  let rsa_bits = ref 512 in
  let cheat = ref "aimbot-zeus" in
  Arg.parse
    [
      ("--players", Arg.Set_int players, "N  players per session (default 2)");
      ("--seconds", Arg.Set_float seconds, "S  virtual seconds per session (default 4)");
      ("--seed", Arg.Set_int seed, "N  world seed (default 21)");
      ("--rsa-bits", Arg.Set_int rsa_bits, "N  identity key size (default 512)");
      ("--cheat", Arg.Set_string cheat, "NAME  catalog cheat to sweep (default aimbot-zeus)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "avm_fault_sweep [--players N] [--seconds S] [--seed N] [--rsa-bits N] [--cheat NAME]";
  let cheat =
    match Cheats.find !cheat with
    | c -> c
    | exception Not_found ->
      Printf.eprintf "unknown cheat %S; see avm_run --list-cheats\n" !cheat;
      exit 2
  in
  let o =
    Fault_sweep.sweep ~players:!players
      ~duration_us:(!seconds *. 1.0e6)
      ~seed:(Int64.of_int !seed) ~rsa_bits:!rsa_bits ~cheat ()
  in
  let show ok = String.concat "" (List.map (fun b -> if b then "." else "X") (Array.to_list ok)) in
  Printf.printf "%-18s %-8s %-8s %14s %7s\n" "schedule" "honest" "cheat" "retransmissions"
    "gaveup";
  List.iter
    (fun (r : Fault_sweep.row) ->
      Printf.printf "%-18s %-8s %-8s %14d %7d\n" r.Fault_sweep.label
        (show r.Fault_sweep.verdicts.Fault_sweep.honest_ok)
        (show r.Fault_sweep.verdicts.Fault_sweep.cheat_ok)
        r.Fault_sweep.retransmissions r.Fault_sweep.gaveup)
    o.Fault_sweep.rows;
  if o.Fault_sweep.invariant_holds then
    print_endline "fault-vs-verdict invariant holds: every schedule matches the baseline"
  else begin
    prerr_endline "FATAL: a fault schedule changed an audit verdict";
    exit 1
  end
