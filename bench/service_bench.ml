(* Auditor-as-a-service benchmark (ISSUE 8, ROADMAP item 4).

   Streams a fleet of concurrent live sessions through one
   Avm_service.Daemon twice from the same seed — once with the shared
   replay cache off, once on — and reports the service-level numbers:
   ingest throughput, the audit-lag distribution against the
   configured bound, and detection latency from mid-session cheat
   injection to evidence delivery.

   Hard checks, all fatal: every planted cheat detected (both passes),
   zero false flags, p99 lag within the bound, and a verdict vector
   byte-identical cache-on vs cache-off. *)

module Service_run = Avm_scenario.Service_run
module Replay_cache = Avm_core.Replay_cache
module Audit_ctx = Avm_core.Audit_ctx
module Metrics = Avm_obs.Metrics

let () =
  let sessions = ref 200 in
  let epochs = ref 3 in
  let activity = ref 0.10 in
  let max_lag = ref 4096 in
  let budget = ref 5_000_000 in
  let seed = ref 11 in
  let out = ref "BENCH_service.json" in
  let smoke = ref false in
  Arg.parse
    [
      ("--sessions", Arg.Set_int sessions, "N  concurrent sessions (default 200)");
      ("--epochs", Arg.Set_int epochs, "E  epochs (default 3)");
      ("--activity", Arg.Set_float activity, "F  active-node fraction per epoch (default 0.10)");
      ("--max-lag", Arg.Set_int max_lag, "L  audit lag bound in entries (default 4096)");
      ("--budget", Arg.Set_int budget, "I  instructions per session per pump (default 5M)");
      ("--seed", Arg.Set_int seed, "S  master seed (default 11)");
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  50-session run for CI smoke checks");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "service_bench [--sessions N] [--epochs E] [--max-lag L] [--out PATH] [--smoke]";
  if !smoke then sessions := 50;
  let spec =
    {
      Service_run.default_spec with
      Service_run.sessions = !sessions;
      epochs = !epochs;
      activity = !activity;
      max_lag = !max_lag;
      budget = !budget;
      seed = Int64.of_int !seed;
    }
  in
  Printf.printf "service bench: %d sessions, %d epochs, lag bound %d, seed %d\n%!" !sessions
    !epochs !max_lag !seed;
  Metrics.reset ();
  Avm_crypto.Sigcache.clear ();
  let off = Service_run.run { spec with Service_run.dedup = false } in
  Printf.printf "cache off: %d entries ingested in %.2fs service time\n%!"
    off.Service_run.entries_ingested off.Service_run.service_seconds;
  Metrics.reset ();
  Avm_crypto.Sigcache.clear ();
  let on = Service_run.run spec in
  let stats = on.Service_run.cache in
  Printf.printf "cache on:  %d entries ingested in %.2fs service time (hits %d, misses %d)\n%!"
    on.Service_run.entries_ingested on.Service_run.service_seconds stats.Replay_cache.hits
    stats.Replay_cache.misses;
  (* --- hard checks -------------------------------------------------------- *)
  let sig_on = Service_run.signature on and sig_off = Service_run.signature off in
  if sig_on <> sig_off then begin
    Printf.eprintf "FATAL: verdict vector differs cache-on vs cache-off\n";
    exit 1
  end;
  if on.Service_run.missed <> [] || off.Service_run.missed <> [] then begin
    Printf.eprintf "FATAL: %d/%d cheats went undetected (on/off)\n"
      (List.length on.Service_run.missed)
      (List.length off.Service_run.missed);
    exit 1
  end;
  if on.Service_run.false_flagged <> [] || off.Service_run.false_flagged <> [] then begin
    Printf.eprintf "FATAL: honest sessions were flagged\n";
    exit 1
  end;
  if on.Service_run.lag_p99 > !max_lag then begin
    Printf.eprintf "FATAL: p99 audit lag %d exceeds bound %d\n" on.Service_run.lag_p99 !max_lag;
    exit 1
  end;
  (* --- rates -------------------------------------------------------------- *)
  let service_s = max 1e-6 on.Service_run.service_seconds in
  let entries_per_sec = float_of_int on.Service_run.entries_ingested /. service_s in
  let session_epochs_per_sec = float_of_int (!sessions * !epochs) /. service_s in
  let latencies = List.map snd on.Service_run.detection_latency_us |> List.sort compare in
  let lat_nth p =
    let n = List.length latencies in
    if n = 0 then 0.0 else List.nth latencies (min (n - 1) (n * p / 100))
  in
  let hit_rate =
    float_of_int stats.Replay_cache.hits
    /. float_of_int (max 1 (stats.Replay_cache.hits + stats.Replay_cache.misses))
  in
  Printf.printf
    "service: %.0f entries/sec, %.1f session-epochs/sec; lag p50 %d p99 %d max %d; \
     detection latency p50 %.0f us, max %.0f us\n%!"
    entries_per_sec session_epochs_per_sec on.Service_run.lag_p50 on.Service_run.lag_p99
    on.Service_run.lag_max (lat_nth 50) (lat_nth 100);
  Printf.printf "cheats: %d planted, %d detected; backpressure engaged %d\n%!"
    (List.length on.Service_run.cheats)
    (List.length on.Service_run.detected)
    on.Service_run.backpressure_engaged;
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"sessions\": %d,\n\
    \  \"epochs\": %d,\n\
    \  \"activity\": %.3f,\n\
    \  \"lag_bound_entries\": %d,\n\
    \  \"budget_instructions\": %d,\n\
    \  \"entries_ingested\": %d,\n\
    \  \"entries_per_sec_ingested\": %.1f,\n\
    \  \"session_epochs_per_sec\": %.1f,\n\
    \  \"lag_p50_entries\": %d,\n\
    \  \"lag_p99_entries\": %d,\n\
    \  \"lag_max_entries\": %d,\n\
    \  \"detection_latency_p50_us\": %.1f,\n\
    \  \"detection_latency_max_us\": %.1f,\n\
    \  \"cheats_planted\": %d,\n\
    \  \"cheats_detected\": %d,\n\
    \  \"cheats_missed\": %d,\n\
    \  \"honest_false_flags\": %d,\n\
    \  \"cache_hits\": %d,\n\
    \  \"cache_misses\": %d,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"cache_instructions_saved\": %d,\n\
    \  \"backpressure_engaged\": %d,\n\
    \  \"backpressure_refusals\": %d,\n\
    \  \"drain_rounds\": %d,\n\
    \  \"verdict_signature\": \"%s\",\n\
    \  \"verdict_signature_matches_cache_off\": %b\n\
     }\n"
    !sessions !epochs !activity !max_lag !budget on.Service_run.entries_ingested
    entries_per_sec session_epochs_per_sec on.Service_run.lag_p50 on.Service_run.lag_p99
    on.Service_run.lag_max (lat_nth 50) (lat_nth 100)
    (List.length on.Service_run.cheats)
    (List.length on.Service_run.detected)
    (List.length on.Service_run.missed)
    (List.length on.Service_run.false_flagged)
    stats.Replay_cache.hits stats.Replay_cache.misses hit_rate
    stats.Replay_cache.instructions_saved on.Service_run.backpressure_engaged
    on.Service_run.backpressure_refusals on.Service_run.drain_rounds sig_on (sig_on = sig_off);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
