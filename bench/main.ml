(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   measuring the component cost that drives that result, plus ablation
   benches for the design choices called out in DESIGN.md §5.

   These complement bin/experiments.exe (which regenerates the actual
   tables/figures): the benches answer "how expensive is the mechanism
   itself on this host", the experiments answer "does the paper's shape
   reproduce". *)

open Bechamel
open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity
module Machine = Avm_machine.Machine

(* ------------------------------------------------------------------ *)
(* Fixtures: one small recorded two-party session, reused throughout. *)

let rng = Avm_util.Rng.create 99L
let ca = Identity.create_ca rng ~bits:512 "ca"
let alice = Identity.issue ca rng ~bits:512 "alice"
let bob = Identity.issue ca rng ~bits:512 "bob"
let kp768 = Avm_crypto.Rsa.generate rng ~bits:768

let guest_src =
  {|
global acc;
fn main() {
  out(NET_TX, 1);
  out(NET_TX, 7);
  out(NET_TX_SEND, 0);
  while (1) {
    var t = in(CLOCK);
    acc = acc + (t & 3);
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      out(NET_TX, 1);
      while (len > 0) { out(NET_TX, in(NET_RX) + 1); len = len - 1; }
      out(NET_RX_NEXT, 0);
      out(NET_TX_SEND, 0);
      avail = in(NET_RX_AVAIL);
    }
  }
}
|}

let guest_image = (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words
let peers_a = [ (0, "alice"); (1, "bob") ]
let peers_b = [ (0, "bob"); (1, "alice") ]

let record_session ~poke_at =
  let config = Config.make ~snapshot_every_us:(Some 200_000) Config.Avmm_rsa768 in
  let a_out = Queue.create () and b_out = Queue.create () in
  let a =
    Avmm.create ~identity:alice ~config ~image:guest_image ~mem_words:4096 ~peers:peers_a
      ~on_send:(fun e -> Queue.add e a_out) ()
  in
  let b =
    Avmm.create ~identity:bob ~config ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~on_send:(fun e -> Queue.add e b_out) ()
  in
  let cert_of n = Identity.certificate (if n = "alice" then alice else bob) in
  let shuttle src dst outq =
    while not (Queue.is_empty outq) do
      let env = Queue.pop outq in
      match Avmm.deliver dst env ~sender_cert:(cert_of env.Wireformat.src) with
      | `Ack ack | `Duplicate ack ->
        ignore (Avmm.accept_ack src ack ~acker_cert:(cert_of ack.Wireformat.acker))
      | `Rejected _ -> ()
    done
  in
  let t = ref 0.0 in
  for i = 1 to 100 do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    (match poke_at with
    | Some slice when slice = i ->
      Avmm.poke b ~addr:(Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 guest_src) "g_acc") ~value:31337
    | _ -> ());
    shuttle a b a_out;
    shuttle b a b_out
  done;
  b

let honest = record_session ~poke_at:None
let cheater = record_session ~poke_at:(Some 50)

let entries_of avmm =
  let log = Avmm.log avmm in
  Log.segment log ~from:1 ~upto:(Log.length log)

let honest_entries = entries_of honest
let cheater_entries = entries_of cheater
let honest_segment_raw = Log.encode_segment honest_entries
let honest_segment_packed = Avm_compress.Codec.compress honest_segment_raw

(* A long-lived machine spinning a loop, for interpreter-rate benches. *)
let spin_machine =
  let src = "movi r1, 0\nloop:\naddi r1, r1, 1\njmp loop\n" in
  Machine.create ~mem_words:1024 (Avm_isa.Asm.assemble src).Avm_isa.Asm.words

(* A machine with dirty pages, for snapshot benches. *)
let snap_machine = Machine.create ~mem_words:32768 guest_image
let snap_tracker = Avm_machine.Snapshot.tracker ()
let _ = Avm_machine.Snapshot.take snap_tracker snap_machine

let sha_buf = String.init 4096 (fun i -> Char.chr (i land 0xff))
let sample_log = Log.create ()

let sample_event =
  Avm_machine.Event.Io_in { port = Avm_isa.Isa.port_clock; value = 123456; msg = -1 }

let clock_opt = Clock_opt.create ~threshold_us:100 ~base_delay_us:150 ~max_delay_us:1000 ()
let clock_now = ref 0.0

(* ------------------------------------------------------------------ *)
(* The benches. *)

let stage = Staged.stage

let tests =
  [
    (* Table 1: detecting a cheat = replaying until divergence. *)
    Test.make ~name:"table1/replay-detects-poke"
      (stage (fun () ->
           match
             Replay.replay ~image:guest_image ~mem_words:4096 ~peers:peers_b
               ~entries:cheater_entries ()
           with
           | Replay.Diverged _ -> ()
           | Replay.Verified _ -> failwith "cheat missed"));
    (* Figure 3: log growth = cost of appending execution events. *)
    Test.make ~name:"fig3/log-append-exec-event"
      (stage (fun () -> ignore (Log.append sample_log (Entry.Exec sample_event))));
    Test.make ~name:"fig3/authenticator-issue-rsa512"
      (stage (fun () ->
           let e = Log.entry sample_log 1 in
           ignore (Auth.make bob ~entry:e ~prev_hash:Log.genesis_hash)));
    (* Figure 4: compressed-log series. *)
    Test.make ~name:"fig4/compress-recorded-log"
      (stage (fun () -> ignore (Avm_compress.Codec.compress honest_segment_raw)));
    Test.make ~name:"fig4/decompress-recorded-log"
      (stage (fun () -> ignore (Avm_compress.Codec.decompress honest_segment_packed)));
    (* §6.5: the clock-read optimization itself. *)
    Test.make ~name:"s6.5/clock-opt-on-read"
      (stage (fun () ->
           clock_now := !clock_now +. 2.0;
           ignore (Clock_opt.on_read clock_opt ~now_us:!clock_now)));
    (* §6.6: the two audit phases, list-fed and streamed off the
       segment store (the AVMM's log is compressed at rest). *)
    Test.make ~name:"s6.6/syntactic-check"
      (stage (fun () ->
           ignore
             (Audit.syntactic
                ~ctx:
                  (Audit.ctx
                     ~node_cert:(Identity.certificate bob)
                     ~peer_certs:
                       [
                         ("alice", Identity.certificate alice);
                         ("bob", Identity.certificate bob);
                       ]
                     ())
                ~prev_hash:Log.genesis_hash ~entries:honest_entries ())));
    Test.make ~name:"s6.6/syntactic-streaming-compressed"
      (stage (fun () ->
           ignore
             (Audit.syntactic_of_log
                ~ctx:
                  (Audit.ctx
                     ~node_cert:(Identity.certificate bob)
                     ~peer_certs:
                       [
                         ("alice", Identity.certificate alice);
                         ("bob", Identity.certificate bob);
                       ]
                     ())
                ~log:(Avmm.log honest) ())));
    Test.make ~name:"s6.6/semantic-replay-chunked"
      (stage (fun () ->
           let log = Avmm.log honest in
           match
             Replay.replay_chunks ~image:guest_image ~mem_words:4096 ~peers:peers_b
               ~chunks:(Log.chunk_seq log ~from:1 ~upto:(Log.length log)) ()
           with
           | Replay.Verified _ -> ()
           | Replay.Diverged _ -> failwith "honest log diverged"));
    Test.make ~name:"s6.6/semantic-replay-1s-guest"
      (stage (fun () ->
           match
             Replay.replay ~image:guest_image ~mem_words:4096 ~peers:peers_b
               ~entries:honest_entries ()
           with
           | Replay.Verified _ -> ()
           | Replay.Diverged _ -> failwith "honest log diverged"));
    (* Figure 5: the RTT ladder is driven by signature costs. *)
    Test.make ~name:"fig5/rsa768-sign"
      (stage (fun () -> ignore (Avm_crypto.Rsa.sign kp768.Avm_crypto.Rsa.private_ "ping")));
    Test.make ~name:"fig5/rsa768-verify"
      (let s = Avm_crypto.Rsa.sign kp768.Avm_crypto.Rsa.private_ "ping" in
       stage (fun () ->
           ignore (Avm_crypto.Rsa.verify kp768.Avm_crypto.Rsa.public ~msg:"ping" ~signature:s)));
    (* Figures 6/7: frame rates derive from interpreter throughput. *)
    Test.make ~name:"fig6-7/machine-1000-instructions"
      (stage (fun () -> ignore (Machine.run spin_machine Machine.null_backend ~fuel:1000)));
    (* Figure 8: online auditing = incremental engine cranking. *)
    Test.make ~name:"fig8/online-engine-feed-and-crank"
      (stage (fun () ->
           let e = Replay.engine ~image:guest_image ~mem_words:4096 ~peers:peers_b () in
           Replay.feed e honest_entries;
           let rec drain () =
             match Replay.crank e ~fuel:200_000 with
             | `Blocked -> ()
             | `Fuel_exhausted -> drain ()
             | `Fault _ -> failwith "fault"
           in
           drain ()));
    (* Figure 9 / §6.12: snapshot mechanics. *)
    Test.make ~name:"fig9/incremental-snapshot-3-dirty-pages"
      (stage (fun () ->
           Avm_machine.Memory.write (Machine.mem snap_machine) 100 1;
           Avm_machine.Memory.write (Machine.mem snap_machine) 2000 2;
           Avm_machine.Memory.write (Machine.mem snap_machine) 30000 3;
           ignore (Avm_machine.Snapshot.take snap_tracker snap_machine)));
    Test.make ~name:"fig9/merkle-root-128-pages"
      (stage (fun () -> ignore (Avm_machine.Snapshot.merkle_of_machine snap_machine)));
    (* Substrate ablations (DESIGN.md §5). *)
    Test.make ~name:"ablation/sha256-4KiB"
      (stage (fun () -> ignore (Avm_crypto.Sha256.digest sha_buf)));
    Test.make ~name:"ablation/entry-seal-hash-chain"
      (stage (fun () ->
           ignore
             (Entry.seal ~prev:Log.genesis_hash ~seq:1
                (Entry.Exec sample_event))));
    Test.make ~name:"ablation/rsa512-sign-vs-768"
      (stage (fun () -> ignore (Identity.sign bob "x")));
    Test.make ~name:"ablation/mlang-compile-game"
      (stage (fun () ->
           ignore (Avm_mlang.Compile.compile ~stack_top:32768 Avm_scenario.Guests.game_source)));
    (* §7.5 ablation: what taint tracking adds to a replay. *)
    Test.make ~name:"ablation/replay-with-taint-tracking"
      (stage (fun () ->
           let taint = Avm_analysis.Taint.create () in
           let r =
             Avm_analysis.Forensics.replay ~image:guest_image ~mem_words:4096 ~peers:peers_b
               ~entries:honest_entries ~taint ()
           in
           match r.Avm_analysis.Forensics.outcome with
           | Avm_core.Replay.Verified _ -> ()
           | Avm_core.Replay.Diverged _ -> failwith "diverged"));
    (* §7.2 extension: per-keystroke attestation cost. *)
    Test.make ~name:"ablation/secure-input-attest"
      (let device = Secure_input.create_device (Avm_util.Rng.create 4L) () in
       stage (fun () -> ignore (Secure_input.attest device 42)));
  ]

(* ------------------------------------------------------------------ *)
(* Runner: OLS estimate of monotonic-clock time per run. *)

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:None () in
  Printf.printf "%-42s  %14s  %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> nan
          in
          let pretty =
            if Float.is_nan ns then "-"
            else if ns > 1.0e9 then Printf.sprintf "%.2f s" (ns /. 1.0e9)
            else if ns > 1.0e6 then Printf.sprintf "%.2f ms" (ns /. 1.0e6)
            else if ns > 1.0e3 then Printf.sprintf "%.2f us" (ns /. 1.0e3)
            else Printf.sprintf "%.0f ns" ns
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Printf.printf "%-42s  %14s  %8s\n%!" name pretty r2)
        analyzed)
    tests
