(* Equivocation-detection benchmark: plant a forking minority, run the
   per-epoch cross-witness authenticator exchange next to the ordinary
   sharded audits, and measure what the paper's fork-evidence argument
   costs — gossip messages, authenticators and wire bytes — against
   what it buys: every forker caught in its own fork epoch with a
   transferable two-signature proof, where the per-witness baseline is
   a full epoch late (and blind to last-epoch forks).

   Like fleet_bench, the experiment runs twice from the same seed —
   sequential auditor vs a --jobs N pool — and the verdict-plus-proof
   signature must be byte-identical (mismatch is fatal). Headline
   numbers land in a small JSON file (default BENCH_equiv.json). *)

module Equiv = Avm_scenario.Equivocation_run
module Audit_ctx = Avm_core.Audit_ctx

let () =
  let nodes = ref 200 in
  let epochs = ref 4 in
  let witnesses = ref 3 in
  let fork_frac = ref 0.05 in
  let seed = ref 11 in
  let jobs = ref (Avm_util.Domain_pool.default_jobs ()) in
  let out = ref "BENCH_equiv.json" in
  let smoke = ref false in
  Arg.parse
    [
      ("--nodes", Arg.Set_int nodes, "N  fleet size (default 200)");
      ("--epochs", Arg.Set_int epochs, "E  audit epochs (default 4)");
      ("--witnesses", Arg.Set_int witnesses, "K  witnesses per node (default 3)");
      ("--fork-frac", Arg.Set_float fork_frac, "F  forking fraction (default 0.05)");
      ("--seed", Arg.Set_int seed, "S  master seed (default 11)");
      ("--jobs", Arg.Set_int jobs, "N  auditor pool lanes (default: host core count)");
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  60-node run for CI smoke checks");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "equiv_bench [--nodes N] [--epochs E] [--witnesses K] [--jobs N] [--out PATH] [--smoke]";
  if !smoke then nodes := 60;
  let jobs = max 1 !jobs in
  let spec =
    {
      Equiv.default_spec with
      Equiv.nodes = !nodes;
      epochs = !epochs;
      witnesses = !witnesses;
      fork_frac = !fork_frac;
      seed = Int64.of_int !seed;
    }
  in
  Printf.printf "equiv: %d nodes, %d epochs, k=%d, fork-frac %.2f, seed %d\n%!" !nodes !epochs
    !witnesses !fork_frac !seed;
  let seq = Equiv.run ~par:Audit_ctx.sequential spec in
  Printf.printf "sequential pass: %d sim events in %.2fs, audits %.2fs, exchange %.2fs\n%!"
    seq.Equiv.sim_events seq.Equiv.run_seconds seq.Equiv.audit_seconds seq.Equiv.exchange_seconds;
  let par = Equiv.run ~par:(Audit_ctx.parallel jobs) spec in
  Printf.printf "parallel pass (%d jobs): audits %.2fs\n%!" jobs par.Equiv.audit_seconds;
  let sig_seq = Equiv.signature seq and sig_par = Equiv.signature par in
  if sig_seq <> sig_par then begin
    Printf.eprintf "FATAL: verdict/proof vector differs between jobs 1 and jobs %d\n" jobs;
    exit 1
  end;
  let forkers = seq.Equiv.forkers in
  let caught_in_epoch =
    List.for_all
      (fun (f : Equiv.forker) ->
        match List.assoc_opt f.Equiv.node seq.Equiv.exchange_detected with
        | Some e -> e = f.Equiv.epoch
        | None -> false)
      forkers
  in
  if not caught_in_epoch then begin
    Printf.eprintf "FATAL: a forker escaped its fork epoch's exchange\n";
    exit 1
  end;
  if seq.Equiv.false_flags <> [] then begin
    Printf.eprintf "FATAL: %d honest nodes accused\n" (List.length seq.Equiv.false_flags);
    exit 1
  end;
  if seq.Equiv.proofs_verified <> List.length seq.Equiv.proofs then begin
    Printf.eprintf "FATAL: %d proofs failed standalone verification\n"
      (List.length seq.Equiv.proofs - seq.Equiv.proofs_verified);
    exit 1
  end;
  (* Baseline lag: epochs between the fork and the first failing audit
     verdict (a forker the baseline never flags contributes nothing —
     count them separately). *)
  let baseline_lags =
    List.filter_map
      (fun (f : Equiv.forker) ->
        Option.map (fun e -> e - f.Equiv.epoch) (List.assoc_opt f.Equiv.node seq.Equiv.baseline_detected))
      forkers
  in
  let baseline_missed = List.length forkers - List.length baseline_lags in
  Printf.printf
    "forkers %d: exchange caught all in-epoch; baseline caught %d (lag >= 1 epoch), missed %d\n%!"
    (List.length forkers) (List.length baseline_lags) baseline_missed;
  Printf.printf "exchange: %d msgs, %d auths, %d bytes (%.1f bytes/node/epoch)\n%!"
    seq.Equiv.ex_messages seq.Equiv.ex_auths seq.Equiv.ex_bytes
    (float_of_int seq.Equiv.ex_bytes /. float_of_int (!nodes * !epochs));
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"nodes\": %d,\n\
    \  \"witnesses_per_node\": %d,\n\
    \  \"epochs\": %d,\n\
    \  \"fork_frac\": %.3f,\n\
    \  \"forkers_planted\": %d,\n\
    \  \"forkers_detected_by_exchange\": %d,\n\
    \  \"forkers_detected_in_fork_epoch\": %d,\n\
    \  \"baseline_detected\": %d,\n\
    \  \"baseline_missed\": %d,\n\
    \  \"baseline_min_lag_epochs\": %d,\n\
    \  \"false_flags\": %d,\n\
    \  \"proofs\": %d,\n\
    \  \"proofs_verified_standalone\": %d,\n\
    \  \"commit_auths\": %d,\n\
    \  \"exchange_messages\": %d,\n\
    \  \"exchange_auths\": %d,\n\
    \  \"exchange_bytes\": %d,\n\
    \  \"exchange_bytes_per_node_epoch\": %.1f,\n\
    \  \"exchange_wall_seconds\": %.3f,\n\
    \  \"audit_wall_seconds\": %.3f,\n\
    \  \"sim_events\": %d,\n\
    \  \"auditor_parallel_jobs\": %d,\n\
    \  \"verdict_signature\": \"%s\",\n\
    \  \"verdict_signature_matches_parallel\": true\n\
     }\n"
    !nodes !witnesses !epochs !fork_frac (List.length forkers)
    (List.length seq.Equiv.exchange_detected)
    (List.length seq.Equiv.exchange_detected)
    (List.length baseline_lags) baseline_missed
    (match baseline_lags with [] -> 0 | l -> List.fold_left min max_int l)
    (List.length seq.Equiv.false_flags)
    (List.length seq.Equiv.proofs)
    seq.Equiv.proofs_verified seq.Equiv.commit_auths seq.Equiv.ex_messages seq.Equiv.ex_auths
    seq.Equiv.ex_bytes
    (float_of_int seq.Equiv.ex_bytes /. float_of_int (!nodes * !epochs))
    seq.Equiv.exchange_seconds seq.Equiv.audit_seconds seq.Equiv.sim_events jobs sig_seq;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
