(* Crypto hot-path benchmark (DESIGN.md §12).

   Measures the three primitives the audit engine leans on:

   - SHA-256 throughput (MB/s), one-shot and streamed through a
     reusable context;
   - RSA sign and verify rates at the paper's 768-bit key size, with
     the verified-signature cache both cold (every verify is a full
     Montgomery exponentiation) and warm (repeats answered from the
     cache), plus the observed hit rate;
   - a verdict cross-check: a short two-party session is recorded, its
     log tampered mid-stream, and the syntactic audit run at jobs=1
     and jobs=4 with the signature cache enabled and disabled. All
     four reports must be identical and must flag the tampering — the
     cache and the domain pool may change only the cost of an audit,
     never its verdict. Any mismatch is fatal (exit 1).

   Results land in a small JSON file (default BENCH_crypto.json). *)

open Avm_core
open Avm_crypto
open Avm_tamperlog

let guest_src =
  {|
global acc;
fn main() {
  out(NET_TX, 5);
  out(NET_TX_SEND, 0);
  while (1) {
    acc = acc + (in(CLOCK) & 7);
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      out(NET_TX, 2);
      while (len > 0) { out(NET_TX, in(NET_RX) + 1); len = len - 1; }
      out(NET_RX_NEXT, 0);
      out(NET_TX_SEND, 0);
      avail = in(NET_RX_AVAIL);
    }
  }
}
|}

let guest_image = (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words
let peers_a = [ (0, "alice"); (1, "bob") ]
let peers_b = [ (0, "bob"); (1, "alice") ]

(* A compact two-party session (same shape as audit_bench's) that
   yields a log with signed authenticators to audit. *)
let record_session ~slices =
  let rng = Avm_util.Rng.create 77L in
  let ca = Identity.create_ca rng ~bits:512 "ca" in
  let alice = Identity.issue ca rng ~bits:512 "alice" in
  let bob = Identity.issue ca rng ~bits:512 "bob" in
  let config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768 in
  let a_out = Queue.create () and b_out = Queue.create () in
  let a =
    Avmm.create ~identity:alice ~config ~image:guest_image ~mem_words:4096 ~peers:peers_a
      ~on_send:(fun e -> Queue.add e a_out) ()
  in
  let b =
    Avmm.create ~identity:bob ~config ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~on_send:(fun e -> Queue.add e b_out) ()
  in
  let cert_of n = Identity.certificate (if n = "alice" then alice else bob) in
  let auths = ref [] in
  let shuttle src dst outq =
    while not (Queue.is_empty outq) do
      let env = Queue.pop outq in
      auths := env.Wireformat.auth :: !auths;
      match Avmm.deliver dst env ~sender_cert:(cert_of env.Wireformat.src) with
      | `Ack ack | `Duplicate ack ->
        ignore (Avmm.accept_ack src ack ~acker_cert:(cert_of ack.Wireformat.acker))
      | `Rejected _ -> ()
    done
  in
  let t = ref 0.0 in
  for _ = 1 to slices do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    shuttle a b a_out;
    shuttle b a b_out
  done;
  (b, Identity.certificate bob, [ ("alice", cert_of "alice"); ("bob", cert_of "bob") ], !auths)

(* Repetitions of [f] per second over at least [min_seconds]. *)
let per_sec ~min_seconds f =
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < min_seconds || !reps = 0 do
    f ();
    incr reps
  done;
  float_of_int !reps /. (Unix.gettimeofday () -. t0)

let counter name = Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) name

let () =
  let out = ref "BENCH_crypto.json" in
  let smoke = ref false in
  Arg.parse
    [
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  tiny run for CI smoke checks");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "crypto_bench [--out PATH] [--smoke]";
  let min_seconds = if !smoke then 0.1 else 0.5 in

  (* --- SHA-256 throughput ------------------------------------------------ *)
  let block = String.init (1 lsl 16) (fun i -> Char.chr (i land 0xff)) in
  let block_mb = float_of_int (String.length block) /. 1_048_576.0 in
  let sha_oneshot = block_mb *. per_sec ~min_seconds (fun () -> ignore (Sha256.digest block)) in
  let ctx = Sha256.init () in
  let sha_streamed =
    block_mb
    *. per_sec ~min_seconds (fun () ->
           Sha256.reset ctx;
           (* 64-byte slices: the shape of entry/authenticator hashing. *)
           let pos = ref 0 in
           while !pos < String.length block do
             Sha256.feed_sub ctx block ~pos:!pos ~len:64;
             pos := !pos + 64
           done;
           ignore (Sha256.finalize ctx))
  in
  Printf.printf "sha256: %.1f MB/s one-shot, %.1f MB/s streamed (64B chunks)\n%!" sha_oneshot
    sha_streamed;

  (* --- RSA sign / verify ------------------------------------------------- *)
  let rng = Avm_util.Rng.create 2024L in
  let kp = Rsa.generate rng ~bits:768 in
  let msg = "crypto bench payload" in
  let signature = Rsa.sign kp.Rsa.private_ msg in
  let sign_rate = per_sec ~min_seconds (fun () -> ignore (Rsa.sign kp.Rsa.private_ msg)) in
  Sigcache.set_enabled false;
  let verify_cold =
    per_sec ~min_seconds (fun () ->
        if not (Rsa.verify kp.Rsa.public ~msg ~signature) then exit 1)
  in
  Sigcache.set_enabled true;
  Sigcache.clear ();
  let h0 = counter "crypto.sig_cache_hits" and m0 = counter "crypto.sig_cache_misses" in
  let verify_cached =
    per_sec ~min_seconds (fun () ->
        if not (Rsa.verify kp.Rsa.public ~msg ~signature) then exit 1)
  in
  let hits = counter "crypto.sig_cache_hits" - h0 in
  let misses = counter "crypto.sig_cache_misses" - m0 in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf "rsa-768: %.0f signs/s, %.0f verifies/s cold, %.0f/s cached (%.4f hit rate)\n%!"
    sign_rate verify_cold verify_cached hit_rate;

  (* --- RSA batch verify --------------------------------------------------- *)
  (* The audit shape: one chunk's worth of signatures under a shared
     modulus, verified in one amortized pass. Rate counts signatures,
     not batches, so it compares directly against [verify_cold]. *)
  let batch_n = 32 in
  let batch_items =
    Array.init batch_n (fun i ->
        let m = Printf.sprintf "batch payload %d" i in
        (kp.Rsa.public, m, Rsa.sign kp.Rsa.private_ m))
  in
  Sigcache.set_enabled false;
  let batch_rate =
    float_of_int batch_n
    *. per_sec ~min_seconds (fun () ->
           if not (Array.for_all Fun.id (Rsa.verify_batch batch_items)) then exit 1)
  in
  Sigcache.set_enabled true;
  let batch_speedup = batch_rate /. Float.max 1.0 verify_cold in
  Printf.printf "rsa-768 batch: %.0f verifies/s in batches of %d (%.2fx per-signature)\n%!"
    batch_rate batch_n batch_speedup;

  (* --- Verdict cross-check: cache x jobs on a tampered log ---------------- *)
  let slices = if !smoke then 40 else 120 in
  let avmm, node_cert, peer_certs, auths = record_session ~slices in
  let log = Avmm.log avmm in
  let n = Log.length log in
  let forked = Log.fork log in
  Log.tamper_replace forked (n / 2) (Log.entry log 1).Entry.content;
  let bad = Log.segment forked ~from:1 ~upto:(Log.length forked) in
  let ctx = Audit.ctx ~node_cert ~peer_certs ~auths () in
  let audit ~cache ~jobs =
    Sigcache.set_enabled cache;
    Sigcache.clear ();
    Audit.syntactic ~ctx ~prev_hash:Log.genesis_hash ~entries:bad ~par:(Audit.parallel jobs)
      ()
  in
  let reference = audit ~cache:false ~jobs:1 in
  if reference.Audit.failures = [] then begin
    Printf.eprintf "FATAL: tampered log went undetected\n";
    exit 1
  end;
  let crosscheck_ok =
    List.for_all
      (fun (cache, jobs) -> audit ~cache ~jobs = reference)
      [ (false, 4); (true, 1); (true, 4) ]
  in
  Sigcache.set_enabled true;
  if not crosscheck_ok then begin
    Printf.eprintf "FATAL: audit verdict depends on the signature cache or job count\n";
    exit 1
  end;
  Printf.printf "crosscheck: %d-entry tampered log, cache {on,off} x jobs {1,4} agree\n%!" n;

  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"sha256_mb_per_sec\": %.1f,\n\
    \  \"sha256_streamed_mb_per_sec\": %.1f,\n\
    \  \"rsa_bits\": 768,\n\
    \  \"rsa_signs_per_sec\": %.1f,\n\
    \  \"rsa_verifies_per_sec\": %.1f,\n\
    \  \"rsa_verifies_cached_per_sec\": %.1f,\n\
    \  \"rsa_batch_verifies_per_sec\": %.1f,\n\
    \  \"rsa_batch_size\": %d,\n\
    \  \"batch_speedup\": %.2f,\n\
    \  \"sig_cache_hit_rate\": %.4f,\n\
    \  \"crosscheck_entries\": %d,\n\
    \  \"crosscheck_ok\": %b\n\
     }\n"
    sha_oneshot sha_streamed sign_rate verify_cold verify_cached batch_rate batch_n
    batch_speedup hit_rate n crosscheck_ok;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
