(* Deduplicated re-execution benchmark (DESIGN.md §14, ROADMAP item 2).

   Runs the same fleet experiment twice from the same seed — once with
   the replay cache disabled (every semantic job replays its epoch
   chunk in full) and once with one Replay_cache shared across every
   (target, witness) job — and reports what fleet-wide memoization is
   worth on the honest-majority workload: an idle-majority fleet where
   most nodes' epoch chunks are fingerprint-identical, so each
   distinct chunk replays once and the rest audit as a three-digest
   compare.

   Two speedups are reported:

   - semantic_speedup: wall time of all semantic audit jobs, cache off
     vs on (the fleet-level answer — bounded by the miss cohort, i.e.
     the distinct-fingerprint count);
   - dedup_path_speedup: mean per-chunk cost of the full pipeline
     (download + replay; spot-designated hits when any were drawn,
     else misses) vs the mean cost of a cache hit on the same
     fingerprint population — the like-for-like cost of what each hit
     avoided.

   Hard checks, all fatal: the verdict vector must be byte-identical
   cache-on vs cache-off, every planted cheat must be detected in both
   passes, no honest node may be flagged, and the cache-on pass must
   actually hit. The Sigcache is cleared and metrics are reset between
   passes so neither pass inherits the other's warm crypto cache or
   histogram samples (both passes use the same seed, hence identical
   keys and signatures). *)

module Fleet_run = Avm_scenario.Fleet_run
module Replay_cache = Avm_core.Replay_cache
module Audit_ctx = Avm_core.Audit_ctx
module Metrics = Avm_obs.Metrics

let () =
  let nodes = ref 2_000 in
  let epochs = ref 3 in
  let activity = ref 0.05 in
  let seed = ref 11 in
  let spot_rate = ref 8 in
  let out = ref "BENCH_dedup.json" in
  let smoke = ref false in
  Arg.parse
    [
      ("--nodes", Arg.Set_int nodes, "N  fleet size (default 2000)");
      ("--epochs", Arg.Set_int epochs, "E  audit epochs (default 3)");
      ("--activity", Arg.Set_float activity, "F  active-node fraction per epoch (default 0.05)");
      ("--seed", Arg.Set_int seed, "S  master seed (default 11)");
      ("--spot-rate", Arg.Set_int spot_rate, "R  1-in-R fingerprints replay even on hit (default 8)");
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  300-node run for CI smoke checks");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dedup_bench [--nodes N] [--epochs E] [--activity F] [--spot-rate R] [--out PATH] [--smoke]";
  if !smoke then nodes := 300;
  let spec =
    {
      Fleet_run.default_spec with
      Fleet_run.nodes = !nodes;
      epochs = !epochs;
      activity = !activity;
      seed = Int64.of_int !seed;
      spot_rate = !spot_rate;
    }
  in
  Printf.printf "dedup bench: %d nodes, %d epochs, activity %.2f, spot rate %d, seed %d\n%!"
    !nodes !epochs !activity !spot_rate !seed;
  (* Baseline first, cache pass second; each pass starts from a cold
     Sigcache and zeroed metrics so the comparison is symmetric. *)
  Metrics.reset ();
  Avm_crypto.Sigcache.clear ();
  let off =
    Fleet_run.run ~par:Audit_ctx.sequential { spec with Fleet_run.dedup = false }
  in
  Printf.printf "cache off: %d semantic entries in %d us\n%!" off.Fleet_run.semantic_entries
    off.Fleet_run.semantic_us;
  Metrics.reset ();
  Avm_crypto.Sigcache.clear ();
  let on = Fleet_run.run ~par:Audit_ctx.sequential spec in
  let hist name =
    match List.assoc_opt name (Metrics.snapshot ()).Metrics.histograms with
    | Some h -> h
    | None -> { Metrics.count = 0; total = 0.0; mean = 0.0; min = 0.0; max = 0.0;
                p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  in
  let hit_h = hist "spot_check.cache_hit_seconds" in
  let spot_h = hist "spot_check.cache_spot_seconds" in
  let miss_h = hist "spot_check.cache_miss_seconds" in
  let stats =
    match on.Fleet_run.cache with
    | Some s -> s
    | None ->
      Printf.eprintf "FATAL: dedup pass ran without a cache\n";
      exit 1
  in
  Printf.printf "cache on:  %d semantic entries in %d us (hits %d, misses %d, spots %d)\n%!"
    on.Fleet_run.semantic_entries on.Fleet_run.semantic_us stats.Replay_cache.hits
    stats.Replay_cache.misses stats.Replay_cache.spot_checks;
  (* --- hard checks -------------------------------------------------------- *)
  let sig_on = Fleet_run.signature on and sig_off = Fleet_run.signature off in
  if sig_on <> sig_off then begin
    Printf.eprintf "FATAL: verdict vector differs cache-on vs cache-off\n";
    exit 1
  end;
  if on.Fleet_run.missed <> [] || off.Fleet_run.missed <> [] then begin
    Printf.eprintf "FATAL: %d/%d cheats went undetected (on/off)\n"
      (List.length on.Fleet_run.missed)
      (List.length off.Fleet_run.missed);
    exit 1
  end;
  if on.Fleet_run.false_flagged <> [] then begin
    Printf.eprintf "FATAL: %d honest nodes flagged\n" (List.length on.Fleet_run.false_flagged);
    exit 1
  end;
  if stats.Replay_cache.hits = 0 then begin
    Printf.eprintf "FATAL: dedup pass never hit the cache\n";
    exit 1
  end;
  (* --- rates -------------------------------------------------------------- *)
  let per_sec entries us = float_of_int entries /. (float_of_int (max 1 us) /. 1e6) in
  let rate_off = per_sec off.Fleet_run.semantic_entries off.Fleet_run.semantic_us in
  let rate_on = per_sec on.Fleet_run.semantic_entries on.Fleet_run.semantic_us in
  let semantic_speedup = rate_on /. rate_off in
  let hit_rate =
    float_of_int stats.Replay_cache.hits
    /. float_of_int (max 1 (stats.Replay_cache.hits + stats.Replay_cache.misses))
  in
  (* Like-for-like per-chunk cost: a spot-designated hit is a full
     replay of a chunk whose fingerprint also hit, so spot/hit is the
     cleanest dedup-path ratio; when seeded designation drew no spots
     (hits concentrate on a handful of distinct fingerprints), fall
     back to the miss mean — the same pipeline on the miss cohort. *)
  let full_mean, full_kind =
    if spot_h.Metrics.count > 0 then (spot_h.Metrics.mean, "spot")
    else (miss_h.Metrics.mean, "miss")
  in
  let dedup_path_speedup =
    if hit_h.Metrics.count = 0 || hit_h.Metrics.mean <= 0.0 then 1.0
    else full_mean /. hit_h.Metrics.mean
  in
  Printf.printf
    "semantic: %.0f entries/sec off, %.0f on (%.2fx); hit rate %.3f; dedup path %.1fx (%s/hit)\n%!"
    rate_off rate_on semantic_speedup hit_rate dedup_path_speedup full_kind;
  Printf.printf "cheats: %d planted, %d detected with cache, %d without\n%!"
    (List.length on.Fleet_run.cheats)
    (List.length on.Fleet_run.detected)
    (List.length off.Fleet_run.detected);
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"nodes\": %d,\n\
    \  \"epochs\": %d,\n\
    \  \"activity\": %.3f,\n\
    \  \"spot_rate\": %d,\n\
    \  \"semantic_entries\": %d,\n\
    \  \"semantic_entries_per_sec_off\": %.1f,\n\
    \  \"semantic_entries_per_sec_on\": %.1f,\n\
    \  \"semantic_speedup\": %.3f,\n\
    \  \"cache_hits\": %d,\n\
    \  \"cache_misses\": %d,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"cache_spot_checks\": %d,\n\
    \  \"cache_claim_mismatches\": %d,\n\
    \  \"cache_poisoned\": %d,\n\
    \  \"cache_bytes_saved\": %d,\n\
    \  \"cache_instructions_saved\": %d,\n\
    \  \"hit_mean_us\": %.2f,\n\
    \  \"full_mean_us\": %.2f,\n\
    \  \"full_mean_kind\": \"%s\",\n\
    \  \"dedup_path_speedup\": %.1f,\n\
    \  \"cheats_planted\": %d,\n\
    \  \"cheats_detected\": %d,\n\
    \  \"cheats_missed\": %d,\n\
    \  \"honest_false_flags\": %d,\n\
    \  \"verdict_signature\": \"%s\",\n\
    \  \"verdict_signature_matches_baseline\": true\n\
     }\n"
    !nodes !epochs !activity !spot_rate on.Fleet_run.semantic_entries rate_off rate_on
    semantic_speedup stats.Replay_cache.hits stats.Replay_cache.misses hit_rate
    stats.Replay_cache.spot_checks stats.Replay_cache.claim_mismatches
    stats.Replay_cache.poisoned stats.Replay_cache.bytes_saved
    stats.Replay_cache.instructions_saved
    (hit_h.Metrics.mean *. 1e6)
    (full_mean *. 1e6)
    full_kind dedup_path_speedup
    (List.length on.Fleet_run.cheats)
    (List.length on.Fleet_run.detected)
    (List.length on.Fleet_run.missed)
    (List.length on.Fleet_run.false_flagged)
    sig_on;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
