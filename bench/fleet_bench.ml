(* Fleet-scale witness-audit benchmark (the ROADMAP's 10k-node north
   star): an event-driven simulation of N accountable kv nodes on a
   witness-graph topology, with network faults and a cheating minority,
   audited per epoch by the sharded witness pool.

   The whole experiment runs twice from the same seed — once with a
   sequential auditor, once with a --jobs N pool — and the two verdict
   vectors must be byte-identical (any mismatch is fatal): shard
   boundaries depend only on the job list, never on worker count.
   Headline numbers land in a small JSON file (default
   BENCH_fleet.json): nodes simulated, heap events/sec through the
   simulator, audit coverage per epoch, auditor throughput in jobs/sec
   for both passes, and the cheat-detection scoreboard. *)

module Fleet_run = Avm_scenario.Fleet_run
module Faults = Avm_netsim.Faults
module Audit_ctx = Avm_core.Audit_ctx

let () =
  let nodes = ref 10_000 in
  let epochs = ref 3 in
  let witnesses = ref 3 in
  let seed = ref 7 in
  let jobs = ref (Avm_util.Domain_pool.default_jobs ()) in
  let out = ref "BENCH_fleet.json" in
  let smoke = ref false in
  Arg.parse
    [
      ("--nodes", Arg.Set_int nodes, "N  fleet size (default 10000)");
      ("--epochs", Arg.Set_int epochs, "E  audit epochs (default 3)");
      ("--witnesses", Arg.Set_int witnesses, "K  witnesses per node (default 3)");
      ("--seed", Arg.Set_int seed, "S  master seed (default 7)");
      ("--jobs", Arg.Set_int jobs, "N  auditor pool lanes (default: host core count; 1 = sequential)");
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  500-node run for CI smoke checks");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fleet_bench [--nodes N] [--epochs E] [--witnesses K] [--jobs N] [--out PATH] [--smoke]";
  if !smoke then nodes := 500;
  (* Respect the host: the old [max 2] forced a 2-domain pool even on a
     single core, where the committed "speedups" were honest-to-0.33x
     slowdowns. At jobs = 1 the second pass still runs (it checks the
     pool path's verdict determinism) but no domains spawn. *)
  let jobs = max 1 !jobs in
  let epoch_us = 1_000_000.0 in
  (* Faults on, as the acceptance demands: a lossy reordering wire the
     whole time, plus two fail-stop crash windows inside epoch 1 that
     heal before the boundary — retransmission backoff has to carry the
     reports through, and the audits must still all come back clean. *)
  let faults =
    Faults.make ~drop:0.02 ~reorder:0.05 ~jitter_us:2_000.0
      ~crashes:
        [
          { Faults.from_us = 0.25 *. epoch_us; to_us = 0.55 *. epoch_us; node = !nodes / 7 };
          { Faults.from_us = 0.30 *. epoch_us; to_us = 0.60 *. epoch_us; node = !nodes / 3 };
        ]
      ()
  in
  let spec =
    {
      Fleet_run.default_spec with
      Fleet_run.nodes = !nodes;
      epochs = !epochs;
      witnesses = !witnesses;
      seed = Int64.of_int !seed;
      epoch_us;
      key_pool = 64;
      faults = Some faults;
    }
  in
  Printf.printf "fleet: %d nodes, %d epochs, k=%d, faults on, seed %d\n%!" !nodes !epochs
    !witnesses !seed;
  let seq = Fleet_run.run ~par:Audit_ctx.sequential spec in
  Printf.printf "sequential pass: %d sim events in %.2fs, %d audit jobs in %.2fs\n%!"
    seq.Fleet_run.sim_events seq.Fleet_run.run_seconds seq.Fleet_run.audit_jobs
    seq.Fleet_run.audit_seconds;
  let par = Fleet_run.run ~par:(Audit_ctx.parallel jobs) spec in
  Printf.printf "parallel pass (%d jobs): %d audit jobs in %.2fs\n%!" jobs
    par.Fleet_run.audit_jobs par.Fleet_run.audit_seconds;
  let sig_seq = Fleet_run.signature seq and sig_par = Fleet_run.signature par in
  if sig_seq <> sig_par then begin
    Printf.eprintf "FATAL: verdict vector differs between jobs 1 and jobs %d\n" jobs;
    exit 1
  end;
  List.iter
    (fun (r : Fleet_run.epoch_report) ->
      if r.Fleet_run.coverage <> 1.0 then begin
        Printf.eprintf "FATAL: epoch %d coverage %.3f < 1.0\n" r.Fleet_run.epoch
          r.Fleet_run.coverage;
        exit 1
      end)
    seq.Fleet_run.reports;
  if seq.Fleet_run.missed <> [] then begin
    Printf.eprintf "FATAL: %d cheats went undetected\n" (List.length seq.Fleet_run.missed);
    exit 1
  end;
  if seq.Fleet_run.false_flagged <> [] then begin
    Printf.eprintf "FATAL: %d honest nodes flagged\n"
      (List.length seq.Fleet_run.false_flagged);
    exit 1
  end;
  let events_per_sec = float_of_int seq.Fleet_run.sim_events /. seq.Fleet_run.run_seconds in
  let jobs_per_sec (o : Fleet_run.outcome) =
    float_of_int o.Fleet_run.audit_jobs /. o.Fleet_run.audit_seconds
  in
  Printf.printf "sim: %.0f events/sec; auditor: %.0f jobs/sec seq, %.0f jobs/sec at %d jobs\n%!"
    events_per_sec (jobs_per_sec seq) (jobs_per_sec par) jobs;
  Printf.printf "cheats: %d planted, %d detected, 0 missed, 0 false flags\n%!"
    (List.length seq.Fleet_run.cheats)
    (List.length seq.Fleet_run.detected);
  (* The sequential pass's own cache (each run creates one); all-zero
     when the spec disables dedup. *)
  let cstats =
    match seq.Fleet_run.cache with
    | Some s -> s
    | None ->
      {
        Avm_core.Replay_cache.hits = 0;
        misses = 0;
        spot_checks = 0;
        claim_mismatches = 0;
        poisoned = 0;
        bytes_saved = 0;
        instructions_saved = 0;
      }
  in
  let coverage_json =
    String.concat ", "
      (List.map (fun (r : Fleet_run.epoch_report) -> Printf.sprintf "%.4f" r.Fleet_run.coverage)
         seq.Fleet_run.reports)
  in
  let failures_json =
    String.concat ", "
      (List.map (fun (r : Fleet_run.epoch_report) -> string_of_int r.Fleet_run.failures)
         seq.Fleet_run.reports)
  in
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"nodes\": %d,\n\
    \  \"witnesses_per_node\": %d,\n\
    \  \"epochs\": %d,\n\
    \  \"epoch_virtual_us\": %.0f,\n\
    \  \"faults_enabled\": true,\n\
    \  \"sim_events\": %d,\n\
    \  \"sim_events_per_sec\": %.1f,\n\
    \  \"sim_wall_seconds\": %.3f,\n\
    \  \"retransmissions\": %d,\n\
    \  \"audit_jobs\": %d,\n\
    \  \"audit_coverage_per_epoch\": [%s],\n\
    \  \"audit_failures_per_epoch\": [%s],\n\
    \  \"auditor_jobs_per_sec_sequential\": %.1f,\n\
    \  \"auditor_jobs_per_sec_parallel\": %.1f,\n\
    \  \"auditor_parallel_jobs\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"auditor_speedup\": %.3f,\n\
    \  \"dedup_enabled\": %b,\n\
    \  \"cache_hits\": %d,\n\
    \  \"cache_misses\": %d,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"cache_bytes_saved\": %d,\n\
    \  \"semantic_entries\": %d,\n\
    \  \"semantic_wall_us\": %d,\n\
    \  \"cheats_planted\": %d,\n\
    \  \"cheats_detected\": %d,\n\
    \  \"cheats_missed\": %d,\n\
    \  \"honest_false_flags\": %d,\n\
    \  \"verdict_signature\": \"%s\",\n\
    \  \"verdict_signature_matches_parallel\": true\n\
     }\n"
    !nodes spec.Fleet_run.witnesses !epochs epoch_us seq.Fleet_run.sim_events events_per_sec
    seq.Fleet_run.run_seconds
    (Avm_netsim.Net.retransmissions seq.Fleet_run.net)
    seq.Fleet_run.audit_jobs
    coverage_json failures_json
    (jobs_per_sec seq) (jobs_per_sec par) jobs
    (Domain.recommended_domain_count ())
    (jobs_per_sec par /. jobs_per_sec seq)
    spec.Fleet_run.dedup cstats.Avm_core.Replay_cache.hits cstats.Avm_core.Replay_cache.misses
    (let t = cstats.Avm_core.Replay_cache.hits + cstats.Avm_core.Replay_cache.misses in
     if t = 0 then 0.0 else float_of_int cstats.Avm_core.Replay_cache.hits /. float_of_int t)
    cstats.Avm_core.Replay_cache.bytes_saved
    seq.Fleet_run.semantic_entries seq.Fleet_run.semantic_us
    (List.length seq.Fleet_run.cheats)
    (List.length seq.Fleet_run.detected)
    (List.length seq.Fleet_run.missed)
    (List.length seq.Fleet_run.false_flagged)
    sig_seq;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
