(* Audit-throughput benchmark for the segmented log pipeline.

   Records a two-party session (the receiver's AVMM keeps its log
   compressed at rest, sealing a segment at every snapshot boundary),
   then measures how fast the streaming auditor consumes it:

   - syntactic entries/sec: the single-pass checks of Audit.syntactic,
     streamed segment-by-segment off the compressed store;
   - semantic entries/sec: deterministic replay via
     Replay.replay_chunks over the same segment feed;
   - the same two passes with a --jobs N domain pool (parallel
     syntactic over sealed segments, snapshot-partitioned parallel
     replay), reported as speedups over the sequential pass;
   - the at-rest compression ratio of the audited log;

   and cross-checks that (a) the segment-driven audit reaches the same
   verdict as the audit of the materialized entry list, and (b) the
   parallel audit produces reports identical to the sequential one on
   both the honest session and tampered forks of it. Any mismatch is
   fatal (exit 1). Rates use wall-clock time, since with a pool the
   process CPU clock counts every domain. Results land in a small JSON
   file (default BENCH_audit.json). *)

open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity

let guest_src =
  {|
global acc;
fn main() {
  out(NET_TX, 1);
  out(NET_TX, 7);
  out(NET_TX_SEND, 0);
  while (1) {
    var t = in(CLOCK);
    acc = acc + (t & 3);
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      out(NET_TX, 1);
      while (len > 0) { out(NET_TX, in(NET_RX) + 1); len = len - 1; }
      out(NET_RX_NEXT, 0);
      out(NET_TX_SEND, 0);
      avail = in(NET_RX_AVAIL);
    }
  }
}
|}

let guest_image = (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words
let peers_a = [ (0, "alice"); (1, "bob") ]
let peers_b = [ (0, "bob"); (1, "alice") ]

let record_session ~slices =
  let rng = Avm_util.Rng.create 99L in
  let ca = Identity.create_ca rng ~bits:512 "ca" in
  let alice = Identity.issue ca rng ~bits:512 "alice" in
  let bob = Identity.issue ca rng ~bits:512 "bob" in
  let config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768 in
  let a_out = Queue.create () and b_out = Queue.create () in
  let a =
    Avmm.create ~identity:alice ~config ~image:guest_image ~mem_words:4096 ~peers:peers_a
      ~on_send:(fun e -> Queue.add e a_out) ()
  in
  let b =
    Avmm.create ~identity:bob ~config ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~on_send:(fun e -> Queue.add e b_out) ()
  in
  let cert_of n = Identity.certificate (if n = "alice" then alice else bob) in
  let auths = ref [] in
  let shuttle src dst outq =
    while not (Queue.is_empty outq) do
      let env = Queue.pop outq in
      auths := env.Wireformat.auth :: !auths;
      match Avmm.deliver dst env ~sender_cert:(cert_of env.Wireformat.src) with
      | `Ack ack | `Duplicate ack ->
        ignore (Avmm.accept_ack src ack ~acker_cert:(cert_of ack.Wireformat.acker))
      | `Rejected _ -> ()
    done
  in
  let t = ref 0.0 in
  for _ = 1 to slices do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    shuttle a b a_out;
    shuttle b a b_out
  done;
  (b, Identity.certificate bob, [ ("alice", cert_of "alice"); ("bob", cert_of "bob") ], !auths)

(* One short two-node session over a 20% lossy wire, to record how
   much work the backoff retransmission layer does for the report's
   [net_retransmissions] field (a storm here is a regression: the
   count should stay logarithmic per in-flight envelope). *)
let lossy_retransmissions ~virtual_seconds =
  let config =
    Config.make ~retrans_base_us:60_000.0 ~retrans_cap_us:500_000.0 Config.Avmm_rsa768
  in
  let net =
    Avm_netsim.Net.create ~rsa_bits:512 ~loss:0.2 ~config
      ~images:[ guest_image; guest_image ] ~mem_words:4096 ~names:[ "alice"; "bob" ] ()
  in
  Avm_netsim.Net.run net ~until_us:(virtual_seconds *. 1.0e6) ();
  Avm_netsim.Net.retransmissions net

(* Repeat [f] until at least [min_seconds] of wall-clock time
   accumulates, so short logs still produce a stable rate. *)
let rate ~min_seconds ~units f =
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < min_seconds || !reps = 0 do
    f ();
    incr reps
  done;
  float_of_int (units * !reps) /. (Unix.gettimeofday () -. t0)

(* Crypto work performed inside a measured phase: sample the global
   crypto.* counters and the clock around [f], and report the phase's
   hashing bandwidth (MB of digested input per second) and signature
   check rate. The calling domain's Sigcache shard is cleared at the
   window start so the phase pays its cold verifications inside the
   measurement, and the rate counts {e answered} checks — cold RSA
   verifies plus cache hits. (Counting only cold verifies reported a
   misleading 0.0: the earlier cross-check passes had warmed the cache
   with this very log's signatures, so the measured window never
   performed a cold verification at all.) *)
let with_crypto_rates f =
  let c name = Avm_obs.Metrics.counter (Avm_obs.Metrics.snapshot ()) name in
  Avm_crypto.Sigcache.clear ();
  let b0 = c "crypto.digest_bytes" in
  let v0 = c "crypto.rsa_verifies" + c "crypto.sig_cache_hits" in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let mb = float_of_int (c "crypto.digest_bytes" - b0) /. 1_048_576.0 in
  let checks = float_of_int (c "crypto.rsa_verifies" + c "crypto.sig_cache_hits" - v0) in
  (r, mb /. dt, checks /. dt)

let () =
  let slices = ref 400 in
  let out = ref "BENCH_audit.json" in
  let smoke = ref false in
  let jobs = ref (Avm_util.Domain_pool.default_jobs ()) in
  Arg.parse
    [
      ("--slices", Arg.Set_int slices, "N  session length in 10ms slices (default 400)");
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  tiny run for CI smoke checks");
      ( "--jobs",
        Arg.Set_int jobs,
        "N  parallel audit lanes (default: host core count; 1 = sequential)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "audit_bench [--slices N] [--out PATH] [--smoke] [--jobs N]";
  if !smoke then slices := 60;
  let jobs = max 1 !jobs in
  let min_seconds = if !smoke then 0.2 else 1.0 in
  let avmm, node_cert, peer_certs, auths = record_session ~slices:!slices in
  let log = Avmm.log avmm in
  let n = Log.length log in
  let nsegs = List.length (Log.segments log) in
  Printf.printf "recorded %d entries in %d sealed segments (+tail), backend=%s\n%!" n nsegs
    (Segment_store.backend_name (Log.backend log));
  let entries = Log.segment log ~from:1 ~upto:n in
  let ctx = Audit.ctx ~node_cert ~peer_certs ~auths () in

  (* Verdict cross-check: list-fed vs segment-driven audit. *)
  let full_list =
    Audit.full ~ctx ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~prev_hash:Log.genesis_hash ~entries ()
  in
  let full_seg =
    Audit.full_of_log ~ctx ~image:guest_image ~mem_words:4096 ~peers:peers_b ~log ()
  in
  let verdict_match =
    (match (full_list.Audit.verdict, full_seg.Audit.verdict) with
    | Ok (), Ok () -> true
    | Error _, Error _ -> true
    | _ -> false)
    && full_list.Audit.syntactic.Audit.failures = full_seg.Audit.syntactic.Audit.failures
  in
  if not verdict_match then begin
    Printf.eprintf "FATAL: segmented audit verdict differs from whole-log audit\n";
    exit 1
  end;

  (* Parallel cross-check, honest session: the parallel audit (and its
     snapshot-partitioned semantic pass) must reproduce the sequential
     report exactly — same counters, same failures, same verdict. *)
  let snapshots = Avmm.snapshots avmm in
  let full_par =
    Audit.full_of_log ~ctx ~image:guest_image ~mem_words:4096 ~peers:peers_b ~log
      ~snapshots ~par:(Audit.parallel jobs) ()
  in
  if
    not
      (full_par.Audit.syntactic = full_seg.Audit.syntactic
      && full_par.Audit.verdict = full_seg.Audit.verdict)
  then begin
    Printf.eprintf "FATAL: parallel audit differs from sequential on the honest session\n";
    exit 1
  end;

  (* Parallel cross-check, cheating sessions: tampered forks must draw
     byte-identical syntactic reports from both passes. *)
  let tamper_check ?(expect_detect = true) name tamper =
    let forked = Log.fork log in
    tamper forked;
    let bad = Log.segment forked ~from:1 ~upto:(Log.length forked) in
    let audit j =
      Audit.syntactic ~ctx ~prev_hash:Log.genesis_hash ~entries:bad
        ~par:(Audit.parallel j) ()
    in
    let seq = audit 1 and par = audit jobs in
    if expect_detect && seq.Audit.failures = [] then begin
      Printf.eprintf "FATAL: %s went undetected\n" name;
      exit 1
    end;
    if seq <> par then begin
      Printf.eprintf "FATAL: parallel audit differs from sequential on %s\n" name;
      exit 1
    end
  in
  let decoy = (Log.entry log 1).Entry.content in
  tamper_check "tamper_replace" (fun l -> Log.tamper_replace l (n / 2) decoy);
  tamper_check "tamper_reseal" (fun l -> Log.tamper_reseal l (n / 2) decoy);
  (* A truncated chain is a valid prefix — the syntactic pass alone
     does not flag it (the latest authenticator would); only equality
     of the two passes is asserted. *)
  tamper_check ~expect_detect:false "tamper_truncate" (fun l -> Log.tamper_truncate l (n / 2));

  let syntactic_rate, syn_hash_mb, syn_rsa_verifies =
    with_crypto_rates (fun () ->
        rate ~min_seconds ~units:n (fun () -> ignore (Audit.syntactic_of_log ~ctx ~log ())))
  in
  (* A lone spot-checker must authenticate the inputs it replays
     (paper §4.4) before trusting the recorded RECV stream — folded
     into the measured semantic phase so its crypto rate reflects the
     audit's real work, not the bare interpreter loop (which performs
     no RSA and used to report 0.0 verifies/sec). *)
  let authenticate_inputs () =
    Log.iter_range log ~from:1 ~upto:n (fun e ->
        match e.Entry.content with
        | Entry.Recv { src; nonce; payload; signature } when signature <> "" -> (
          match List.assoc_opt src peer_certs with
          | None -> ()
          | Some cert ->
            let body = Wireformat.message_body ~src ~dest:"bob" ~nonce ~payload in
            if not (Identity.verify cert ~msg:body ~signature) then begin
              Printf.eprintf "FATAL: forged RECV in honest log\n";
              exit 1
            end)
        | _ -> ())
  in
  let semantic_rate, sem_hash_mb, sem_rsa_verifies =
    with_crypto_rates @@ fun () ->
    rate ~min_seconds ~units:n (fun () ->
        authenticate_inputs ();
        match
          Replay.replay_chunks ~image:guest_image ~mem_words:4096 ~peers:peers_b
            ~chunks:(Log.chunk_seq log ~from:1 ~upto:n) ()
        with
        | Replay.Verified _ -> ()
        | Replay.Diverged d ->
          Printf.eprintf "FATAL: honest log diverged: %s\n" d.Replay.detail;
          exit 1)
  in
  let syntactic_rate_par, semantic_rate_par =
    if jobs = 1 then (syntactic_rate, semantic_rate)
    else
      Avm_util.Domain_pool.with_pool ~jobs (fun pool ->
          let par = Audit.parallel ~pool jobs in
          let syn =
            rate ~min_seconds ~units:n (fun () ->
                ignore (Audit.syntactic_of_log ~ctx ~log ~par ()))
          in
          let sem =
            rate ~min_seconds ~units:n (fun () ->
                authenticate_inputs ();
                match
                  Spot_check.parallel_replay ~par ~image:guest_image ~mem_words:4096
                    ~snapshots ~log ~peers:peers_b ()
                with
                | Replay.Verified _ -> ()
                | Replay.Diverged d ->
                  Printf.eprintf "FATAL: honest log diverged in parallel replay: %s\n"
                    d.Replay.detail;
                  exit 1)
          in
          (syn, sem))
  in
  let syntactic_speedup = syntactic_rate_par /. syntactic_rate in
  let semantic_speedup = semantic_rate_par /. semantic_rate in
  let ratio = Log.compression_ratio log in
  Printf.printf "syntactic: %.0f entries/sec (x%.2f at %d jobs; %.1f MB/s hashed, %.0f rsa verifies/s)\n%!"
    syntactic_rate syntactic_speedup jobs syn_hash_mb syn_rsa_verifies;
  Printf.printf "semantic:  %.0f entries/sec (x%.2f at %d jobs; %.1f MB/s hashed, %.0f rsa verifies/s)\n%!"
    semantic_rate semantic_speedup jobs sem_hash_mb sem_rsa_verifies;
  Printf.printf "compression: %.2fx (%d -> %d bytes at rest)\n%!" ratio (Log.byte_size log)
    (Log.stored_bytes log);
  let net_retransmissions = lossy_retransmissions ~virtual_seconds:(if !smoke then 1.0 else 3.0) in
  Printf.printf "lossy session: %d backoff retransmissions\n%!" net_retransmissions;

  (* Counters/histograms accumulated over every pass above; embedding
     the snapshot lets the CI trend internal rates (entries checked,
     signatures verified, chunk replays) alongside the headline ones. *)
  let metrics =
    Avm_obs.Json.to_string (Avm_obs.Metrics.to_json (Avm_obs.Metrics.snapshot ()))
  in
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"slices\": %d,\n\
    \  \"entries\": %d,\n\
    \  \"sealed_segments\": %d,\n\
    \  \"syntactic_entries_per_sec\": %.1f,\n\
    \  \"syntactic_hash_mb_per_sec\": %.2f,\n\
    \  \"syntactic_rsa_verifies_per_sec\": %.1f,\n\
    \  \"semantic_entries_per_sec\": %.1f,\n\
    \  \"semantic_hash_mb_per_sec\": %.2f,\n\
    \  \"semantic_rsa_verifies_per_sec\": %.1f,\n\
    \  \"parallel_jobs\": %d,\n\
    \  \"syntactic_speedup\": %.3f,\n\
    \  \"semantic_speedup\": %.3f,\n\
    \  \"log_bytes\": %d,\n\
    \  \"stored_bytes\": %d,\n\
    \  \"compression_ratio\": %.3f,\n\
    \  \"verdict_match\": %b,\n\
    \  \"net_retransmissions\": %d,\n\
    \  \"metrics\": %s\n\
     }\n"
    !slices n nsegs syntactic_rate syn_hash_mb syn_rsa_verifies semantic_rate sem_hash_mb
    sem_rsa_verifies jobs syntactic_speedup semantic_speedup
    (Log.byte_size log) (Log.stored_bytes log) ratio verdict_match net_retransmissions metrics;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
