(* Audit-throughput benchmark for the segmented log pipeline.

   Records a two-party session (the receiver's AVMM keeps its log
   compressed at rest, sealing a segment at every snapshot boundary),
   then measures how fast the streaming auditor consumes it:

   - syntactic entries/sec: the single-pass checks of Audit.syntactic,
     streamed segment-by-segment off the compressed store;
   - semantic entries/sec: deterministic replay via
     Replay.replay_chunks over the same segment feed;
   - the at-rest compression ratio of the audited log;

   and cross-checks that the segment-driven audit reaches the same
   verdict as the audit of the materialized entry list. Results land in
   a small JSON file (default BENCH_audit.json). *)

open Avm_core
open Avm_tamperlog
module Identity = Avm_crypto.Identity

let guest_src =
  {|
global acc;
fn main() {
  out(NET_TX, 1);
  out(NET_TX, 7);
  out(NET_TX_SEND, 0);
  while (1) {
    var t = in(CLOCK);
    acc = acc + (t & 3);
    var avail = in(NET_RX_AVAIL);
    while (avail > 0) {
      var len = in(NET_RX_LEN);
      out(NET_TX, 1);
      while (len > 0) { out(NET_TX, in(NET_RX) + 1); len = len - 1; }
      out(NET_RX_NEXT, 0);
      out(NET_TX_SEND, 0);
      avail = in(NET_RX_AVAIL);
    }
  }
}
|}

let guest_image = (Avm_mlang.Compile.compile ~stack_top:4096 guest_src).Avm_isa.Asm.words
let peers_a = [ (0, "alice"); (1, "bob") ]
let peers_b = [ (0, "bob"); (1, "alice") ]

let record_session ~slices =
  let rng = Avm_util.Rng.create 99L in
  let ca = Identity.create_ca rng ~bits:512 "ca" in
  let alice = Identity.issue ca rng ~bits:512 "alice" in
  let bob = Identity.issue ca rng ~bits:512 "bob" in
  let config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768 in
  let a_out = Queue.create () and b_out = Queue.create () in
  let a =
    Avmm.create ~identity:alice ~config ~image:guest_image ~mem_words:4096 ~peers:peers_a
      ~on_send:(fun e -> Queue.add e a_out) ()
  in
  let b =
    Avmm.create ~identity:bob ~config ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~on_send:(fun e -> Queue.add e b_out) ()
  in
  let cert_of n = Identity.certificate (if n = "alice" then alice else bob) in
  let auths = ref [] in
  let shuttle src dst outq =
    while not (Queue.is_empty outq) do
      let env = Queue.pop outq in
      auths := env.Wireformat.auth :: !auths;
      match Avmm.deliver dst env ~sender_cert:(cert_of env.Wireformat.src) with
      | `Ack ack | `Duplicate ack ->
        ignore (Avmm.accept_ack src ack ~acker_cert:(cert_of ack.Wireformat.acker))
      | `Rejected _ -> ()
    done
  in
  let t = ref 0.0 in
  for _ = 1 to slices do
    t := !t +. 10_000.0;
    ignore (Avmm.run_slice a ~until_us:!t);
    ignore (Avmm.run_slice b ~until_us:!t);
    shuttle a b a_out;
    shuttle b a b_out
  done;
  (b, Identity.certificate bob, [ ("alice", cert_of "alice"); ("bob", cert_of "bob") ], !auths)

(* Repeat [f] until at least [min_seconds] of CPU time accumulates, so
   short logs still produce a stable rate. *)
let rate ~min_seconds ~units f =
  let t0 = Sys.time () in
  let reps = ref 0 in
  while Sys.time () -. t0 < min_seconds || !reps = 0 do
    f ();
    incr reps
  done;
  float_of_int (units * !reps) /. (Sys.time () -. t0)

let () =
  let slices = ref 400 in
  let out = ref "BENCH_audit.json" in
  let smoke = ref false in
  Arg.parse
    [
      ("--slices", Arg.Set_int slices, "N  session length in 10ms slices (default 400)");
      ("--out", Arg.Set_string out, "PATH  where to write the JSON report");
      ("--smoke", Arg.Set smoke, "  tiny run for CI smoke checks");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "audit_bench [--slices N] [--out PATH] [--smoke]";
  if !smoke then slices := 60;
  let min_seconds = if !smoke then 0.2 else 1.0 in
  let avmm, node_cert, peer_certs, auths = record_session ~slices:!slices in
  let log = Avmm.log avmm in
  let n = Log.length log in
  let nsegs = List.length (Log.segments log) in
  Printf.printf "recorded %d entries in %d sealed segments (+tail), backend=%s\n%!" n nsegs
    (Segment_store.backend_name (Log.backend log));
  let entries = Log.segment log ~from:1 ~upto:n in

  (* Verdict cross-check: list-fed vs segment-driven audit. *)
  let full_list =
    Audit.full ~node_cert ~peer_certs ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~prev_hash:Log.genesis_hash ~entries ~auths ()
  in
  let full_seg =
    Audit.full_of_log ~node_cert ~peer_certs ~image:guest_image ~mem_words:4096 ~peers:peers_b
      ~log ~auths ()
  in
  let verdict_match =
    (match (full_list.Audit.verdict, full_seg.Audit.verdict) with
    | Ok (), Ok () -> true
    | Error _, Error _ -> true
    | _ -> false)
    && full_list.Audit.syntactic.Audit.failures = full_seg.Audit.syntactic.Audit.failures
  in
  if not verdict_match then begin
    Printf.eprintf "FATAL: segmented audit verdict differs from whole-log audit\n";
    exit 1
  end;

  let syntactic_rate =
    rate ~min_seconds ~units:n (fun () ->
        ignore (Audit.syntactic_of_log ~node_cert ~peer_certs ~log ~auths ()))
  in
  let semantic_rate =
    rate ~min_seconds ~units:n (fun () ->
        match
          Replay.replay_chunks ~image:guest_image ~mem_words:4096 ~peers:peers_b
            ~chunks:(Log.chunk_seq log ~from:1 ~upto:n) ()
        with
        | Replay.Verified _ -> ()
        | Replay.Diverged d ->
          Printf.eprintf "FATAL: honest log diverged: %s\n" d.Replay.detail;
          exit 1)
  in
  let ratio = Log.compression_ratio log in
  Printf.printf "syntactic: %.0f entries/sec\n%!" syntactic_rate;
  Printf.printf "semantic:  %.0f entries/sec\n%!" semantic_rate;
  Printf.printf "compression: %.2fx (%d -> %d bytes at rest)\n%!" ratio (Log.byte_size log)
    (Log.stored_bytes log);

  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"slices\": %d,\n\
    \  \"entries\": %d,\n\
    \  \"sealed_segments\": %d,\n\
    \  \"syntactic_entries_per_sec\": %.1f,\n\
    \  \"semantic_entries_per_sec\": %.1f,\n\
    \  \"log_bytes\": %d,\n\
    \  \"stored_bytes\": %d,\n\
    \  \"compression_ratio\": %.3f,\n\
    \  \"verdict_match\": %b\n\
     }\n"
    !slices n nsegs syntactic_rate semantic_rate (Log.byte_size log) (Log.stored_bytes log)
    ratio verdict_match;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
