# One-command tier-1 verification: full build, the whole test suite,
# a short smoke run of the audit-throughput bench, an end-to-end
# observability smoke (record, audit with --metrics, assert counters),
# and the fault-vs-verdict sweep.

.PHONY: verify build test bench-smoke bench obs-smoke fault-smoke crypto-smoke backend-crosscheck fleet-smoke fleet-bench dedup-smoke dedup-bench service-smoke service-bench equiv-smoke equiv-bench bench-check clean

verify: build test bench-smoke obs-smoke fault-smoke crypto-smoke backend-crosscheck fleet-smoke dedup-smoke service-smoke equiv-smoke bench-check

build:
	dune build

test:
	dune runtest

# Two passes: sequential and 4-way parallel. The bench exits non-zero
# (failing this target) whenever any verdict cross-check — list vs
# segment, sequential vs parallel, honest vs tampered — mismatches.
# Smoke artifacts land under _build/ so an interrupted run never
# strands a stray file in the repo root.
bench-smoke:
	@mkdir -p _build
	dune exec bench/audit_bench.exe -- --smoke --jobs 1 --out _build/BENCH_audit.smoke.json
	dune exec bench/audit_bench.exe -- --smoke --jobs 4 --out _build/BENCH_audit.smoke.json
	@cat _build/BENCH_audit.smoke.json

# Full bench runs (slow): refreshes the committed BENCH_audit.json.
bench:
	dune exec bench/audit_bench.exe -- --out BENCH_audit.json

# Record a short session, audit it sequentially and in parallel with
# --metrics, and assert the snapshot parses with nonzero core counters
# and at least one per-chunk audit span. Both job counts must reach
# the same (clean) verdict.
obs-smoke:
	dune exec bin/avm_run.exe -- --players 2 --seconds 4 --seed 5 --out obs_smoke_recordings
	dune exec bin/avm_audit.exe -- --jobs 1 --metrics obs_smoke_j1.json obs_smoke_recordings/player0.avmrec
	dune exec bin/avm_audit.exe -- --jobs 4 --metrics obs_smoke_j4.json obs_smoke_recordings/player0.avmrec
	dune exec bin/avm_obs_check.exe -- obs_smoke_j1.json \
	  --counter audit.entries_checked --counter log.segments_sealed \
	  --counter replay.entries_fed --span audit.chunk --span audit.semantic
	dune exec bin/avm_obs_check.exe -- obs_smoke_j4.json \
	  --counter audit.entries_checked --counter log.segments_sealed \
	  --counter replay.entries_fed --span audit.chunk --span audit.semantic
	rm -rf obs_smoke_recordings obs_smoke_j1.json obs_smoke_j4.json

# Crypto hot path (DESIGN.md §12): the FIPS/RFC vector + Montgomery
# equivalence + sig-cache test suite, then the crypto bench's verdict
# cross-check — a tampered log audited at jobs {1,4} with the
# signature cache {on,off} must yield four identical failing reports
# (the bench exits non-zero otherwise).
crypto-smoke:
	@mkdir -p _build
	dune exec test/test_crypto.exe
	dune exec bench/crypto_bench.exe -- --smoke --out _build/BENCH_crypto.smoke.json
	@cat _build/BENCH_crypto.smoke.json

# Backend equivalence (DESIGN.md §17): a batch of honest and tampered
# logs audited under the optimized Default crypto backend and the
# naive from-spec Reference backend must produce byte-identical
# reports; exits non-zero on any disagreement.
backend-crosscheck:
	dune exec bin/avm_backend_check.exe

# Sweep the seeded fault schedules (loss, duplication, reordering,
# corruption, partition+crash) over an honest and a cheating session;
# exits non-zero if any schedule changes any auditor's verdict
# relative to the fault-free baseline.
fault-smoke:
	dune exec bin/avm_fault_sweep.exe -- --seconds 3

# Fleet-scale witness auditing (DESIGN.md §13): 200 event-driven nodes
# for 3 epochs on the witness-graph topology, with a cheating minority.
# The binary exits non-zero unless every epoch reaches 100% witness
# coverage, every planted cheat is detected with zero false flags, and
# the verdict vector is identical at auditor jobs 1 and 4.
fleet-smoke:
	dune exec bin/avm_fleet.exe -- --nodes 200 --epochs 3

# Full 10k-node fleet bench (slow): refreshes the committed BENCH_fleet.json.
fleet-bench:
	dune exec bench/fleet_bench.exe -- --out BENCH_fleet.json

# Deduplicated re-execution (DESIGN.md §14): a small fleet audited
# twice from the same seed, cache off then on. The bench exits
# non-zero unless the two verdict vectors are byte-identical, every
# planted cheat is detected in both passes, and the cache-on pass
# actually hits (hit rate > 0).
dedup-smoke:
	@mkdir -p _build
	dune exec bench/dedup_bench.exe -- --smoke --out _build/BENCH_dedup.smoke.json
	@cat _build/BENCH_dedup.smoke.json

# Full dedup bench (slow): refreshes the committed BENCH_dedup.json.
dedup-bench:
	dune exec bench/dedup_bench.exe -- --out BENCH_dedup.json

# Auditor-as-a-service (DESIGN.md §15): 50 live sessions streamed
# into one daemon with a cheating minority poked (or log-rewritten)
# mid-session. The binary exits non-zero unless every planted cheat
# is detected before its session closes, no honest session is
# flagged, p99 audit lag stays within the bound, and the verdict
# vector is identical at pump jobs 1 and 4. The metrics snapshot is
# then asserted on: the service gauges must be present and the p99
# lag gauge within the bound.
# The metrics snapshot lands under _build/ so a failing check never
# strands a stray artifact in the repo root (no cleanup step to skip).
service-smoke:
	@mkdir -p _build
	dune exec bin/avm_auditord.exe -- --sessions 50 --epochs 3 --max-lag 4096 \
	  --check-jobs 4 --metrics _build/service_smoke.json
	dune exec bin/avm_obs_check.exe -- _build/service_smoke.json \
	  --counter service.entries_ingested --counter service.verdicts \
	  --gauge service.sessions --gauge-max service.lag_entries_p99:4096

# Full service bench (slow): refreshes the committed BENCH_service.json.
service-bench:
	dune exec bench/service_bench.exe -- --out BENCH_service.json

# Equivocation detection (DESIGN.md §16): plant forking nodes that
# show half their witnesses one signed commitment and half another;
# the binary exits non-zero unless the cross-witness exchange catches
# every forker within its own fork epoch with zero false flags, every
# proof verifies standalone via check_evidence, and the verdict+proof
# signature is identical at auditor jobs 1 and 4.
equiv-smoke:
	dune exec bin/avm_equiv.exe -- --nodes 60 --epochs 3

# Full equivocation bench (slow): refreshes the committed BENCH_equiv.json.
equiv-bench:
	dune exec bench/equiv_bench.exe -- --out BENCH_equiv.json

# Validate the committed BENCH_*.json artifacts: each must parse and
# carry its required keys with nonzero rates.
bench-check:
	dune exec bin/avm_bench_check.exe

clean:
	dune clean
