# One-command tier-1 verification: full build, the whole test suite,
# and a short smoke run of the audit-throughput bench.

.PHONY: verify build test bench-smoke bench clean

verify: build test bench-smoke

build:
	dune build

test:
	dune runtest

bench-smoke:
	dune exec bench/audit_bench.exe -- --smoke --out BENCH_audit.smoke.json
	@cat BENCH_audit.smoke.json

# Full bench runs (slow): refreshes the committed BENCH_audit.json.
bench:
	dune exec bench/audit_bench.exe -- --out BENCH_audit.json

clean:
	dune clean
