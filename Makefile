# One-command tier-1 verification: full build, the whole test suite,
# and a short smoke run of the audit-throughput bench.

.PHONY: verify build test bench-smoke bench clean

verify: build test bench-smoke

build:
	dune build

test:
	dune runtest

# Two passes: sequential and 4-way parallel. The bench exits non-zero
# (failing this target) whenever any verdict cross-check — list vs
# segment, sequential vs parallel, honest vs tampered — mismatches.
bench-smoke:
	dune exec bench/audit_bench.exe -- --smoke --jobs 1 --out BENCH_audit.smoke.json
	dune exec bench/audit_bench.exe -- --smoke --jobs 4 --out BENCH_audit.smoke.json
	@cat BENCH_audit.smoke.json

# Full bench runs (slow): refreshes the committed BENCH_audit.json.
bench:
	dune exec bench/audit_bench.exe -- --out BENCH_audit.json

clean:
	dune clean
