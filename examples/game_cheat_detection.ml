(* The paper's headline application (§5, §6): three players, one of
   them running a wallhack installed in his VM image. After the match,
   everyone audits everyone; the cheater's replay diverges, evidence
   circulates, and the honest players shun him. Run with:

     dune exec examples/game_cheat_detection.exe *)

open Avm_scenario
open Avm_core

let () =
  print_endline "== a 3-player match; player2 installed 'wallhack-driver' ==";
  let cheat = Cheats.find "wallhack-driver" in
  Printf.printf "   cheat: %s — %s\n%!" cheat.Cheats.name cheat.Cheats.description;
  let spec =
    {
      Game_run.players = 3;
      duration_us = 15.0e6;
      config = Config.make ~snapshot_every_us:(Some 5_000_000) Config.Avmm_rsa768;
      cheat = Some (2, cheat);
      frame_cap = false;
      seed = 7L;
      rsa_bits = 512;
      faults = None;
    }
  in
  let o = Game_run.play spec in
  Array.iteri (fun i fps -> Printf.printf "   player%d rendered %.0f fps\n" i fps) o.Game_run.fps;

  print_endline "== after the match: everyone audits everyone ==";
  let verdicts =
    List.map
      (fun target ->
        let auditor = (target + 1) mod 3 in
        let report = Game_run.audit_player o ~auditor ~target in
        Printf.printf "   player%d audits player%d: %s\n%!" auditor target
          (match report.Audit.verdict with
          | Ok () -> "correct"
          | Error _ -> "FAULTY");
        (target, report))
      [ 0; 1; 2 ]
  in

  print_endline "== evidence distribution (paper §4.6) ==";
  let net = o.Game_run.net in
  List.iter
    (fun (target, report) ->
      (* The faulty outcome already carries the transferable evidence
         (log segment + authenticators + accusation). *)
      match (report.Audit.verdict, report.Audit.evidence) with
      | Error _, Some ev ->
        let name = Avm_netsim.Net.node_name (Avm_netsim.Net.node net target) in
        Printf.printf "   %s\n" (Evidence.describe ev);
        (* every honest player verifies independently and shuns *)
        Array.iter
          (fun node ->
            if Avm_netsim.Net.node_name node <> name then begin
              let confirmed =
                Audit.check_evidence ev
                  ~ctx:
                    (Audit.ctx
                       ~node_cert:(List.assoc name (Avm_netsim.Net.certificates net))
                       ~peer_certs:(Avm_netsim.Net.certificates net) ())
                  ~image:(Game_run.reference_image ())
                  ~mem_words:Guests.mem_words ~peers:(Avm_netsim.Net.peers net) ()
              in
              if confirmed then Multiparty.add_evidence (Avm_netsim.Net.node_ledger node) ev;
              Printf.printf "   %s verifies the evidence: %s; shunned = [%s]\n%!"
                (Avm_netsim.Net.node_name node)
                (if confirmed then "confirmed" else "rejected")
                (String.concat ", " (Multiparty.shunned (Avm_netsim.Net.node_ledger node)))
            end)
          (Avm_netsim.Net.nodes net)
      | _ -> ())
    verdicts;
  print_endline "== done: the cheater is excluded without any trusted server ==";
