(* Quickstart: the paper's Figure 1 scenario in ~100 lines.

   Alice relies on software S running on Bob's machine. Bob runs S
   inside an accountable virtual machine; Alice audits him. Run with:

     dune exec examples/quickstart.exe *)

open Avm_core
module Identity = Avm_crypto.Identity
module Log = Avm_tamperlog.Log

(* The software S: counts requests and answers each incoming packet
   with request_number * value. Written in mlang and compiled to the
   AVM-32 image both parties agree on. *)
let software_s =
  {|
global served;
fn main() {
  while (1) {
    var avail = in(NET_RX_AVAIL);
    if (avail > 0) {
      var v = in(NET_RX);
      out(NET_RX_NEXT, 0);
      served = served + 1;
      out(NET_TX, 1);              // reply to peer 1 (Alice)
      out(NET_TX, served * v);
      out(NET_TX_SEND, 0);
    }
    var t = in(CLOCK);
    t = t;
  }
}
|}

let () =
  print_endline "== 1. setup: certified identities and an agreed-upon image ==";
  let rng = Avm_util.Rng.create 2010L in
  let ca = Identity.create_ca rng "game-admin" in
  let alice = Identity.issue ca rng "alice" in
  let bob = Identity.issue ca rng "bob" in
  let image = (Avm_mlang.Compile.compile ~stack_top:4096 software_s).Avm_isa.Asm.words in
  Printf.printf "   image: %d words; Bob's key: RSA-768\n" (Array.length image);

  print_endline "== 2. Bob boots S inside an AVMM and serves Alice's requests ==";
  let config = Config.make ~snapshot_every_us:(Some 100_000) Config.Avmm_rsa768 in
  let outbox = Queue.create () in
  let bob_avmm =
    Avmm.create ~identity:bob ~config ~image ~mem_words:4096
      ~peers:[ (0, "bob"); (1, "alice") ]
      ~on_send:(fun env -> Queue.add env outbox)
      ()
  in
  (* Alice sends signed requests; the AVMM verifies, logs and injects
     them, and acks each one with an authenticator. *)
  let alice_auths = ref [] in
  let send_request nonce value =
    let payload = Wireformat.payload_of_words [| value |] in
    let body = Wireformat.message_body ~src:"alice" ~dest:"bob" ~nonce ~payload in
    (* Alice commits to her own log too; here we only need her signature. *)
    let log = Log.create () in
    let entry =
      Log.append log (Avm_tamperlog.Entry.Send { dest = "bob"; nonce; payload })
    in
    let auth = Avm_tamperlog.Auth.make alice ~entry ~prev_hash:Log.genesis_hash in
    let env =
      {
        Wireformat.src = "alice";
        dest = "bob";
        nonce;
        payload;
        signature = Identity.sign alice body;
        auth;
      }
    in
    match Avmm.deliver bob_avmm env ~sender_cert:(Identity.certificate alice) with
    | `Ack ack -> alice_auths := ack.Wireformat.recv_auth :: !alice_auths
    | `Duplicate _ | `Rejected _ -> assert false
  in
  (* Alice keeps her own log; she acknowledges every reply with an
     authenticator over her RECV entry (paper §4.3). *)
  let alice_log = Log.create () in
  let replies = ref 0 in
  let drain_replies () =
    while not (Queue.is_empty outbox) do
      let env = Queue.pop outbox in
      incr replies;
      alice_auths := env.Wireformat.auth :: !alice_auths;
      let entry =
        Log.append alice_log
          (Avm_tamperlog.Entry.Recv
             {
               src = env.Wireformat.src;
               nonce = env.Wireformat.nonce;
               payload = env.Wireformat.payload;
               signature = env.Wireformat.signature;
             })
      in
      let recv_auth =
        Avm_tamperlog.Auth.make alice ~entry
          ~prev_hash:(Log.prev_hash alice_log entry.Avm_tamperlog.Entry.seq)
      in
      let ack =
        { Wireformat.acker = "alice"; sender = "bob"; nonce = env.Wireformat.nonce; recv_auth }
      in
      match Avmm.accept_ack bob_avmm ack ~acker_cert:(Identity.certificate alice) with
      | Ok () -> ()
      | Error e -> failwith ("Bob rejected Alice's ack: " ^ e)
    done
  in
  let now = ref 0.0 in
  for i = 1 to 5 do
    send_request i (i * 10);
    now := !now +. 100_000.0;
    ignore (Avmm.run_slice bob_avmm ~until_us:!now);
    drain_replies ()
  done;
  Printf.printf "   Bob served 5 requests and sent %d replies\n" !replies;

  print_endline "== 3. Alice audits: fetch the log, check it, replay it ==";
  let log = Avmm.log bob_avmm in
  let entries = Log.segment log ~from:1 ~upto:(Log.length log) in
  let audit_ctx () =
    Audit.ctx ~node_cert:(Identity.certificate bob)
      ~peer_certs:[ ("alice", Identity.certificate alice); ("bob", Identity.certificate bob) ]
      ~auths:!alice_auths ()
  in
  let report =
    Audit.full ~ctx:(audit_ctx ()) ~image ~mem_words:4096
      ~peers:[ (0, "bob"); (1, "alice") ]
      ~prev_hash:Log.genesis_hash ~entries ()
  in
  Format.printf "   %a@." Audit.pp_outcome report;

  print_endline "== 4. Bob cheats: he pokes S's memory to inflate 'served' ==";
  let served_addr =
    Avm_isa.Asm.symbol (Avm_mlang.Compile.compile ~stack_top:4096 software_s) "g_served"
  in
  Avmm.poke bob_avmm ~addr:served_addr ~value:1000;
  for i = 6 to 8 do
    send_request i (i * 10);
    now := !now +. 100_000.0;
    ignore (Avmm.run_slice bob_avmm ~until_us:!now);
    drain_replies ()
  done;

  print_endline "== 5. the next audit detects it and produces evidence ==";
  let entries = Log.segment log ~from:1 ~upto:(Log.length log) in
  let report =
    Audit.full ~ctx:(audit_ctx ()) ~image ~mem_words:4096
      ~peers:[ (0, "bob"); (1, "alice") ]
      ~prev_hash:Log.genesis_hash ~entries ()
  in
  Format.printf "   %a@." Audit.pp_outcome report;
  (* A faulty outcome already carries transferable evidence — no need
     to assemble the accusation by hand. *)
  (match report.Audit.evidence with
  | Some ev ->
    Printf.printf "   evidence: %s\n" (Evidence.describe ev);
    let confirmed =
      Audit.check_evidence ev ~ctx:(audit_ctx ()) ~image ~mem_words:4096
        ~peers:[ (0, "bob"); (1, "alice") ]
        ()
    in
    Printf.printf "   a third party re-checks the evidence: %s\n"
      (if confirmed then "CONFIRMED — Bob is provably faulty" else "rejected")
  | None -> print_endline "   (unexpected: cheat not detected)")
