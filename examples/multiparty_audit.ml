(* The multi-party mechanisms of paper §4.6:

   1. before auditing Bob, Alice merges the authenticators Charlie
      collected with her own;
   2. when Bob ignores an audit request, Alice forwards a challenge
      through the other players, who stop talking to Bob until he
      answers;
   3. the challenge itself is backed by Bob's own authenticator, so a
      refusal is transferable evidence.

   Run with: dune exec examples/multiparty_audit.exe *)

open Avm_scenario
open Avm_core
module Net = Avm_netsim.Net

let () =
  print_endline "== a short 3-player match (all honest) ==";
  let spec =
    {
      Game_run.players = 3;
      duration_us = 8.0e6;
      config = Config.make ~snapshot_every_us:(Some 4_000_000) Config.Avmm_rsa768;
      cheat = None;
      frame_cap = false;
      seed = 3L;
      rsa_bits = 512;
      faults = None;
    }
  in
  let o = Game_run.play spec in
  let net = o.Game_run.net in
  let name i = Net.node_name (Net.node net i) in
  let ledger i = Net.node_ledger (Net.node net i) in

  print_endline "== 1. authenticator exchange before an audit ==";
  let alice = ledger 1 and charlie = ledger 2 in
  let own = List.length (Multiparty.auths_for alice (name 0)) in
  Multiparty.merge_auths alice ~from:charlie ~node:(name 0);
  let merged = List.length (Multiparty.auths_for alice (name 0)) in
  Printf.printf "   alice held %d authenticators for %s; after merging charlie's: %d\n%!"
    own (name 0) merged;
  let report = Game_run.audit_player o ~auditor:1 ~target:0 in
  Printf.printf "   audit of %s with the pooled authenticators: %s\n%!" (name 0)
    (match report.Audit.verdict with Ok () -> "correct" | Error e -> "FAULTY: " ^ e);

  print_endline "== 2. an unresponsive machine is challenged through the others ==";
  (* Bob (player0) stops answering: model with a network partition. *)
  Net.isolate net 0;
  let challenge =
    Multiparty.open_challenge alice ~accused:(name 0)
      ~description:"produce log segment up to your latest authenticator"
  in
  Multiparty.open_challenge charlie ~accused:(name 0) ~description:"forwarded by alice" |> ignore;
  Printf.printf "   challenge #%d open; players refuse regular traffic with %s: %b\n%!"
    challenge.Multiparty.id (name 0)
    (Multiparty.has_open_challenge alice (name 0)
    && Multiparty.has_open_challenge charlie (name 0));

  print_endline "== 3. if the challenge is never answered, the refusal is evidence ==";
  let bob_log = Avmm.log (Net.node_avmm (Net.node net 0)) in
  let last = Avm_tamperlog.Log.entry bob_log (Avm_tamperlog.Log.length bob_log) in
  let auth =
    (* the freshest authenticator Bob ever sent — Alice holds it *)
    match List.rev (Multiparty.auths_for alice (name 0)) with
    | a :: _ -> a
    | [] -> failwith "no authenticators collected"
  in
  ignore last;
  let ev =
    {
      Evidence.accused = name 0;
      prev_hash = Avm_tamperlog.Log.genesis_hash;
      segment = [];
      auths = [];
      accusation = Evidence.Unanswered_challenge { auth };
    }
  in
  Printf.printf "   %s\n" (Evidence.describe ev);
  Printf.printf "   third party verifies the committed-log claim: %b\n%!"
    (Audit.check_evidence ev
       ~ctx:
         (Audit.ctx
            ~node_cert:(List.assoc (name 0) (Net.certificates net))
            ~peer_certs:(Net.certificates net) ())
       ~image:(Game_run.reference_image ())
       ~mem_words:Guests.mem_words ~peers:(Net.peers net) ());

  print_endline "== 4. Bob reconnects, answers, and normal play resumes ==";
  Net.heal net 0;
  Multiparty.answer_challenge alice challenge.Multiparty.id;
  Printf.printf "   challenge closed; alice still refuses traffic with %s: %b\n" (name 0)
    (Multiparty.has_open_challenge alice (name 0))
